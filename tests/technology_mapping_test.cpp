#include "network/technology_mapping.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/flow.hpp"
#include "network/equivalence.hpp"
#include "network/simulation.hpp"

namespace t1sfq {
namespace {

/// Compares AIG and mapped-network outputs on random word vectors.
bool mapping_equivalent(const Aig& aig, const Network& net, unsigned rounds = 8,
                        uint64_t seed = 0xfeed) {
  if (aig.num_pis() != net.num_pis() || aig.num_pos() != net.num_pos()) {
    return false;
  }
  std::mt19937_64 rng(seed);
  for (unsigned r = 0; r < rounds; ++r) {
    std::vector<uint64_t> pis(aig.num_pis());
    for (auto& w : pis) {
      w = rng();
    }
    const auto aig_values = aig.simulate_words(pis);
    const auto net_out = simulate_words(net, pis);
    for (std::size_t p = 0; p < aig.num_pos(); ++p) {
      const auto po = aig.pos()[p];
      const uint64_t expect = Aig::lit_compl(po) ? ~aig_values[Aig::lit_node(po)]
                                                 : aig_values[Aig::lit_node(po)];
      if (net_out[p] != expect) {
        return false;
      }
    }
  }
  return true;
}

TEST(TechMapping, SingleAndGate) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(aig.add_and(a, b));
  const Network net = map_to_sfq(aig);
  EXPECT_EQ(net.count_of(GateType::And2), 1u);
  EXPECT_TRUE(mapping_equivalent(aig, net));
}

TEST(TechMapping, NandMapsToOneCell) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(Aig::lit_not(aig.add_and(a, b)));
  const Network net = map_to_sfq(aig);
  // One NAND cell beats AND + NOT.
  EXPECT_EQ(net.count_of(GateType::Nand2), 1u);
  EXPECT_EQ(net.count_of(GateType::Not), 0u);
  EXPECT_TRUE(mapping_equivalent(aig, net));
}

TEST(TechMapping, XorCollapsesToOneCell) {
  // Three AIG ands collapse into a single XOR2 cell via the 2-leaf cut.
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(aig.add_xor(a, b));
  const Network net = map_to_sfq(aig);
  EXPECT_EQ(net.count_of(GateType::Xor2), 1u);
  EXPECT_EQ(net.num_gates(), 1u);
  EXPECT_TRUE(mapping_equivalent(aig, net));
}

TEST(TechMapping, MajMapsToMaj3) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto c = aig.add_pi();
  aig.add_po(aig.add_maj(a, b, c));
  const Network net = map_to_sfq(aig);
  EXPECT_EQ(net.count_of(GateType::Maj3), 1u);
  EXPECT_TRUE(mapping_equivalent(aig, net));
}

TEST(TechMapping, Xor3MapsToOneCell) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto c = aig.add_pi();
  aig.add_po(aig.add_xor(aig.add_xor(a, b), c));
  const Network net = map_to_sfq(aig);
  EXPECT_EQ(net.count_of(GateType::Xor3), 1u);
  EXPECT_TRUE(mapping_equivalent(aig, net));
}

TEST(TechMapping, MuxNeedsDecomposition) {
  // ITE is not in the cell library: the mapper falls back to smaller cuts.
  Aig aig;
  const auto s = aig.add_pi();
  const auto t = aig.add_pi();
  const auto e = aig.add_pi();
  aig.add_po(aig.add_mux(s, t, e));
  const Network net = map_to_sfq(aig);
  EXPECT_GE(net.num_gates(), 2u);
  EXPECT_TRUE(mapping_equivalent(aig, net));
}

TEST(TechMapping, ComplementedPoGetsInverter) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto g = aig.add_and(a, b);
  aig.add_po(g);
  aig.add_po(Aig::lit_not(g));
  const Network net = map_to_sfq(aig);
  EXPECT_TRUE(mapping_equivalent(aig, net));
}

TEST(TechMapping, ConstantPo) {
  Aig aig;
  (void)aig.add_pi();
  aig.add_po(Aig::kFalse);
  aig.add_po(Aig::kTrue);
  const Network net = map_to_sfq(aig);
  const auto out = simulate(net, {true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(TechMapping, StatsAreReported) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto c = aig.add_pi();
  aig.add_po(aig.add_maj(a, b, c));
  aig.add_po(aig.add_xor(a, b));
  TechMappingStats stats;
  const Network net = map_to_sfq(aig, {}, &stats);
  EXPECT_EQ(stats.cells, net.num_gates() - net.count_of(GateType::Not));
  EXPECT_EQ(stats.area_jj, raw_gate_area(net, CellLibrary{}));
}

TEST(TechMapping, RandomAigsMapCorrectly) {
  std::mt19937_64 rng(101);
  for (int iter = 0; iter < 25; ++iter) {
    Aig aig;
    std::vector<Aig::Lit> pool;
    const unsigned num_pis = 4 + rng() % 5;
    for (unsigned i = 0; i < num_pis; ++i) {
      pool.push_back(aig.add_pi());
    }
    for (unsigned g = 0; g < 40; ++g) {
      Aig::Lit x = pool[rng() % pool.size()];
      Aig::Lit y = pool[rng() % pool.size()];
      if (rng() & 1) x = Aig::lit_not(x);
      if (rng() & 1) y = Aig::lit_not(y);
      pool.push_back(aig.add_and(x, y));
    }
    for (int p = 0; p < 4; ++p) {
      Aig::Lit po = pool[pool.size() - 1 - p];
      if (rng() & 1) po = Aig::lit_not(po);
      aig.add_po(po);
    }
    const Network net = map_to_sfq(aig);
    EXPECT_TRUE(mapping_equivalent(aig, net)) << "iter " << iter;
  }
}

TEST(TechMapping, MappedAigFeedsTheT1Flow) {
  // End-to-end synthesis: AIG adder -> mapped SFQ cells -> T1 flow.
  Aig aig("aig_adder");
  const unsigned bits = 6;
  std::vector<Aig::Lit> a, b;
  for (unsigned i = 0; i < bits; ++i) a.push_back(aig.add_pi());
  for (unsigned i = 0; i < bits; ++i) b.push_back(aig.add_pi());
  Aig::Lit carry = Aig::kFalse;
  for (unsigned i = 0; i < bits; ++i) {
    aig.add_po(aig.add_xor(aig.add_xor(a[i], b[i]), carry));
    carry = aig.add_maj(a[i], b[i], carry);
  }
  aig.add_po(carry);

  const Network net = map_to_sfq(aig);
  ASSERT_TRUE(mapping_equivalent(aig, net));

  FlowParams p;
  p.clk.phases = 4;
  p.use_t1 = true;
  const FlowResult res = run_flow(net, p);
  EXPECT_GT(res.metrics.t1_used, 0u);
  EXPECT_EQ(check_equivalence(res.mapped, net).result, EquivalenceResult::Equivalent);
}

TEST(TechMapping, BiggerCutsNeverIncreaseArea) {
  Aig aig;
  std::vector<Aig::Lit> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(aig.add_pi());
  std::mt19937_64 rng(7);
  for (int g = 0; g < 60; ++g) {
    pool.push_back(aig.add_and(pool[rng() % pool.size()],
                               Aig::lit_not(pool[rng() % pool.size()])));
  }
  aig.add_po(pool.back());
  aig.add_po(pool[pool.size() - 2]);
  TechMappingParams small;
  small.cut_size = 2;
  TechMappingParams big;
  big.cut_size = 3;
  TechMappingStats s_small, s_big;
  (void)map_to_sfq(aig, small, &s_small);
  (void)map_to_sfq(aig, big, &s_big);
  EXPECT_LE(s_big.area_jj, s_small.area_jj);
}

}  // namespace
}  // namespace t1sfq
