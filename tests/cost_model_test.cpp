/// Unit and regression tests for the unified JJ cost-model layer (src/cost/):
/// CostModel arithmetic and breakdowns, CostDelta pricing primitives, the
/// library-keyed rewrite database with its on-disk cache, and the end-to-end
/// properties the layer exists for — T1 detection winning on *optimized*
/// full-adder netlists again, and a non-default CellLibrary genuinely
/// reshaping every layer's decisions.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>

#include "benchmarks/arith.hpp"
#include "benchmarks/epfl.hpp"
#include "benchmarks/suite.hpp"
#include "core/flow.hpp"
#include "cost/cost_delta.hpp"
#include "cost/cost_model.hpp"
#include "cost/disk_cache.hpp"
#include "network/equivalence.hpp"
#include "network/simulation.hpp"
#include "opt/rewrite_db.hpp"

namespace t1sfq {
namespace {

CellLibrary perturbed_library() {
  CellLibrary pert;  // denser process: cheap splitters, pricey DFFs and XORs
  pert.jj_dff = 10;
  pert.jj_splitter = 1;
  pert.jj_xor2 = 12;
  pert.jj_xor3 = 20;
  return pert;
}

/// The optimized form of a full adder: one xor3 + one maj3 over shared leaves.
Network optimized_full_adder() {
  Network net("fa_opt");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("cin");
  net.add_po(net.add_gate(GateType::Xor3, {a, b, c}), "sum");
  net.add_po(net.add_maj(a, b, c), "cout");
  return net;
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

TEST(CostModel, MarginalsFollowTheConfiguration) {
  const CostModel m{CellLibrary{}, AreaConfig{}, MultiphaseConfig{4}};
  EXPECT_EQ(m.cell_jj(GateType::And2), 10 + 1);  // body + clock share
  EXPECT_EQ(m.cell_jj(GateType::Pi), 0);         // unclocked interface
  EXPECT_EQ(m.dff_jj(), 7);                      // the paper's implicit 7 JJ/DFF
  EXPECT_EQ(m.splitter_jj(), 3);

  AreaConfig no_split;
  no_split.count_splitters = false;
  no_split.clock_jj_per_clocked = 0;
  const CostModel bare{CellLibrary{}, no_split, MultiphaseConfig{4}};
  EXPECT_EQ(bare.cell_jj(GateType::And2), 10);
  EXPECT_EQ(bare.dff_jj(), 6);
  EXPECT_EQ(bare.splitter_jj(), 0);
}

TEST(CostModel, SignatureSeparatesEveryCostParameter) {
  const CostModel base{CellLibrary{}, AreaConfig{}, MultiphaseConfig{4}};
  CellLibrary lib2;
  lib2.jj_xor2 = 99;
  AreaConfig area2;
  area2.clock_jj_per_clocked = 2;
  EXPECT_NE(base.signature(),
            (CostModel{lib2, AreaConfig{}, MultiphaseConfig{4}}.signature()));
  EXPECT_NE(base.signature(),
            (CostModel{CellLibrary{}, area2, MultiphaseConfig{4}}.signature()));
  EXPECT_NE(base.signature(),
            (CostModel{CellLibrary{}, AreaConfig{}, MultiphaseConfig{6}}.signature()));
  EXPECT_EQ(base.signature(),
            (CostModel{CellLibrary{}, AreaConfig{}, MultiphaseConfig{4}}.signature()));
}

TEST(CostModel, PhysicalBreakdownMatchesTheFlowArea) {
  Network net("rca6");
  const Word a = add_pi_word(net, 6, "a");
  const Word b = add_pi_word(net, 6, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");

  FlowParams p;
  p.clk.phases = 4;
  const FlowResult res = run_flow(net, p);
  EXPECT_EQ(res.metrics.breakdown.total(), res.metrics.area_jj);
  EXPECT_EQ(physical_area_jj(res.physical, p.lib, p.area), res.metrics.area_jj);
  // DFF bucket is exactly the materialized DFF bodies.
  EXPECT_EQ(res.metrics.breakdown.dff, res.metrics.num_dffs * p.lib.jj_dff);
  // Per-stage estimates are populated and the chain in -> opt is monotone
  // (the optimizer never worsens its own objective).
  EXPECT_GT(res.metrics.pre_opt_area_jj, 0u);
  EXPECT_LE(res.metrics.opt_area_jj, res.metrics.pre_opt_area_jj);
  EXPECT_GT(res.metrics.detect_area_jj, 0u);
}

TEST(CostModel, NetworkBreakdownHandlesT1Stages) {
  // asap_stages must place a T1 body at the eq.-3 stage, and the estimate
  // must include its landing chains.
  Network net = optimized_full_adder();
  const CostModel m{CellLibrary{}, AreaConfig{}, MultiphaseConfig{4}};
  const uint64_t before = m.network_breakdown(net).total();
  T1DetectionParams dp;
  dp.require_positive_gain = false;  // force the conversion
  detect_and_replace_t1(net, m, dp);
  net = net.cleanup();
  ASSERT_EQ(net.count_of(GateType::T1), 1u);
  Stage out = 0;
  const auto stage = asap_stages(net, &out);
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.node(id).type == GateType::T1) {
      EXPECT_EQ(stage[id], 3);  // PIs at 0, eq. 3 forces sigma = 3
    }
  }
  // Standalone, the T1 realization is priced higher than the 2-gate one —
  // exactly why the default (guarded) detection declines it; see
  // GuardDeclinesStandaloneOptimizedAdder.
  EXPECT_GT(m.network_breakdown(net).total(), before);
}

// ---------------------------------------------------------------------------
// CostDelta
// ---------------------------------------------------------------------------

TEST(CostDelta, SpineAndConePricing) {
  // a -> n1 -> n2 -> ... chain; the driver's spine follows dffs_on_edge.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  NodeId x = net.add_and(a, b);
  for (int i = 0; i < 8; ++i) {
    x = net.add_and(x, b);  // deep chain: b's spine spans all levels
  }
  net.add_po(x);
  const CostModel m{CellLibrary{}, AreaConfig{}, MultiphaseConfig{4}};
  IncrementalView view(net, m);
  const CostDelta cd(view);
  // b feeds consumers at levels 1..9 from level 0: spine = ceil(9/4)-1 = 2.
  EXPECT_EQ(cd.spine(b), 2);
  EXPECT_EQ(cd.spine(a), 0);  // only consumer at level 1
  // Cone of one And2 costs body + clock share.
  EXPECT_EQ(cd.cone_jj({x}), m.cell_jj(GateType::And2));
}

TEST(CostDelta, ResubDeltaPrefersSharingAndReclaimsTheCone) {
  // Two structurally distinct but equivalent signals; rerouting the target's
  // consumer to the donor must price the dying cone as a gain.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId donor = net.add_and(a, b);
  const NodeId target = net.add_gate(GateType::Nand2, {a, b});
  const NodeId target_inv = net.add_not(target);  // and(a,b) again
  net.add_po(donor);
  net.add_po(net.add_or(target_inv, a));
  const CostModel m{CellLibrary{}, AreaConfig{}, MultiphaseConfig{4}};
  IncrementalView view(net, m);
  const CostDelta cd(view);
  const std::vector<NodeId> cone{target_inv, target};
  const int64_t delta = cd.resub_delta(target_inv, cone, donor, false, kNullNode);
  // Nand2 + Not die (11+1 + 9+1 = 22 JJ); the donor pin gains one splitter.
  EXPECT_LT(delta, 0);
  EXPECT_LE(delta, -(m.cell_jj(GateType::Nand2) + m.cell_jj(GateType::Not)) +
                       m.splitter_jj());
}

TEST(CostDelta, SlackAwareDonorPricingChargesBothSidesOfTheSlide) {
  const CostModel m{CellLibrary{}, AreaConfig{}, MultiphaseConfig{4}};

  // Case 1 — a genuinely realizable discount. The donor sits one level over
  // a depth-4 chain; the absorbed consumer is at stage 10. At ASAP (stage 5)
  // the new edge needs ceil(5/4)-1 = 1 spine DFF; slid to stage 6 it needs
  // none, and the slide stays inside the fanin's clock window (4 -> 6), so
  // nothing is charged upstream. The discount is exactly one DFF.
  {
    Network net;
    const NodeId a = net.add_pi();
    const NodeId b = net.add_pi();
    NodeId chain = net.add_and(a, b);
    for (int i = 0; i < 3; ++i) {
      chain = net.add_xor(chain, b);  // levels 2..4
    }
    const NodeId donor = net.add_gate(GateType::Nand2, {chain, b});  // level 5
    NodeId deep = net.add_or(a, b);
    for (int i = 0; i < 8; ++i) {
      deep = net.add_xor(deep, a);  // target chain to level 9
    }
    const NodeId sink = net.add_and(deep, b);  // consumer at level 10
    net.add_po(sink);
    IncrementalView view(net, m);
    const CostDelta cd(view);
    const std::vector<NodeId> cone{deep};
    const int64_t asap_priced = cd.resub_delta(deep, cone, donor, false, kNullNode);
    const int64_t slid_priced =
        cd.resub_delta(deep, cone, donor, false, kNullNode, Stage{6});
    EXPECT_EQ(asap_priced - slid_priced, m.dff_jj());
  }

  // Case 2 — a phantom discount nets to zero. Donor at level 1 over PIs,
  // slid to the target's level 5: the waived downstream spine DFF reappears
  // one-for-one on the PI fanins' spines (stage 0 -> 5 needs one DFF), so
  // the slid price must NOT undercut the ASAP price.
  {
    Network net;
    const NodeId a = net.add_pi();
    const NodeId b = net.add_pi();
    const NodeId donor = net.add_and(a, b);  // level 1
    const NodeId target = net.add_not(net.add_gate(GateType::Nand2, {a, b}));
    NodeId deep = target;
    for (int i = 0; i < 3; ++i) {
      deep = net.add_xor(deep, b);  // levels 3..5
    }
    net.add_po(deep);  // sink at 6
    IncrementalView view(net, m);
    const CostDelta cd(view);
    const std::vector<NodeId> cone{deep};
    const int64_t asap_priced = cd.resub_delta(deep, cone, donor, false, kNullNode);
    const int64_t slid_priced =
        cd.resub_delta(deep, cone, donor, false, kNullNode,
                       std::min(view.alap(donor), Stage{5}));
    EXPECT_EQ(view.alap(donor), 5);  // dangling: only the sink bounds it
    EXPECT_GE(slid_priced, asap_priced);
  }
}

// ---------------------------------------------------------------------------
// RewriteDb: library sensitivity and the disk cache
// ---------------------------------------------------------------------------

TEST(RewriteDb, DifferentLibraryReshapesStructureChoices) {
  // Acceptance demo: with XOR cells priced out, the database settles
  // xor-class functions through AND/OR/NOT decompositions instead.
  RewriteDb::Params cheap;  // defaults
  RewriteDb::Params pricey;
  pricey.lib.jj_xor2 = 120;
  pricey.lib.jj_xnor2 = 120;
  pricey.lib.jj_xor3 = 120;
  ASSERT_NE(cheap.signature(), pricey.signature());

  const RewriteDb& db_cheap = RewriteDb::instance(cheap);
  const RewriteDb& db_pricey = RewriteDb::instance(pricey);
  const uint16_t kXor2 = 0x6666;  // x0 ^ x1 on 4 vars
  ASSERT_TRUE(db_cheap.cost(kXor2).has_value());
  ASSERT_TRUE(db_pricey.cost(kXor2).has_value());
  EXPECT_EQ(*db_cheap.cost(kXor2), cheap.lib.jj_xor2 + cheap.clock_jj);
  // The pricey library must realize the function without any xor-family cell
  // (the cheapest decomposition is well under the 120 JJ cell).
  EXPECT_LT(*db_pricey.cost(kXor2), 120u);
  EXPECT_NE(*db_cheap.cost(kXor2), *db_pricey.cost(kXor2));

  TruthTable f(4);
  f.set_word(0, kXor2);
  const auto match = db_pricey.match(f);
  ASSERT_TRUE(match.has_value());
  Network net;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 4; ++i) {
    leaves.push_back(net.add_pi());
  }
  net.add_po(db_pricey.instantiate(*match, leaves, net));
  EXPECT_EQ(net.count_of(GateType::Xor2), 0u);
  EXPECT_EQ(net.count_of(GateType::Xnor2), 0u);
  EXPECT_EQ(net.count_of(GateType::Xor3), 0u);
  EXPECT_EQ(simulate_truth_tables(net)[0], f);
}

TEST(RewriteDb, RecordedCostBoundsTheRealizedStructure) {
  // The commit criterion of cut rewriting relies on `jj_cost` being an upper
  // bound on what instantiate() builds. Two historical leaks are pinned here:
  // score-based re-settling changing an operand after a parent recorded its
  // cost (fixed by finalize), and const-fed structures that `add_gate` folds
  // into different cells (fixed by excluding constant operands in the BFS).
  const RewriteDb& db = RewriteDb::instance();
  const CellLibrary lib;
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    const uint16_t func = static_cast<uint16_t>(rng());
    TruthTable f(4);
    f.set_word(0, func);
    const auto m = db.match(f);
    if (!m || m->func != func) continue;  // exact entries only
    Network net;
    std::vector<NodeId> leaves;
    for (int i = 0; i < 4; ++i) {
      leaves.push_back(net.add_pi());
    }
    net.add_po(db.instantiate(*m, leaves, net));
    uint64_t realized = 0;
    for (NodeId id = 0; id < net.size(); ++id) {
      const Node& n = net.node(id);
      if (!n.dead && is_clocked(n.type)) {
        realized += lib.jj_cost(n.type) + 1;  // default clock share
      }
    }
    EXPECT_LE(realized, m->jj_cost) << "func 0x" << std::hex << func;
  }
}

TEST(RewriteDb, SerializationRoundTripsAndRejectsMismatches) {
  RewriteDb::Params p;
  p.max_jj = 24;  // small build: fast, still multi-level
  p.npn_index_jj = 20;
  const RewriteDb db(p);
  const std::vector<uint8_t> blob = db.serialize(p);

  const auto restored = RewriteDb::deserialize(blob, p);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_settled(), db.num_settled());
  for (uint16_t func : {uint16_t{0x6666}, uint16_t{0x8888}, uint16_t{0x0110}}) {
    EXPECT_EQ(restored->cost(func), db.cost(func)) << func;
  }

  // Wrong params (different signature) must miss.
  RewriteDb::Params q = p;
  q.max_jj = 25;
  EXPECT_FALSE(RewriteDb::deserialize(blob, q).has_value());
  // Truncation and corruption must miss, never crash.
  std::vector<uint8_t> cut(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(RewriteDb::deserialize(cut, p).has_value());
  std::vector<uint8_t> flipped = blob;
  flipped[4] ^= 0xff;  // header (version field)
  EXPECT_FALSE(RewriteDb::deserialize(flipped, p).has_value());
  // A single bit-flip in the payload (a structure operand) must fail the
  // checksum — size and header checks alone cannot see it, and a wrong
  // operand would silently instantiate the wrong function.
  std::vector<uint8_t> rotted = blob;
  rotted[blob.size() / 2] ^= 0x01;
  EXPECT_FALSE(RewriteDb::deserialize(rotted, p).has_value());
}

TEST(RewriteDb, DiskCachePersistsAcrossInstances) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "t1sfq_cache_test").string();
  std::filesystem::remove_all(dir);
  setenv("T1SFQ_CACHE_DIR", dir.c_str(), 1);

  RewriteDb::Params p;
  p.max_jj = 26;  // unique params: not shared with other tests' instances
  p.npn_index_jj = 20;
  const RewriteDb& built = RewriteDb::instance(p);
  const std::string path = dir + "/" + RewriteDb::cache_file_name(p);
  ASSERT_TRUE(std::filesystem::exists(path)) << path;

  // The persisted blob restores an identical database.
  const auto blob = read_blob(path);
  ASSERT_TRUE(blob.has_value());
  const auto restored = RewriteDb::deserialize(*blob, p);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_settled(), built.num_settled());

  // A corrupted cache file falls back to nullopt at the deserialize layer
  // (instance() then rebuilds in process).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  const auto bad = read_blob(path);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(RewriteDb::deserialize(*bad, p).has_value());

  unsetenv("T1SFQ_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// T1 detection on optimized netlists (the PR's headline regression)
// ---------------------------------------------------------------------------

TEST(T1CostRegression, OptimizedAdder16ConvertsAndWins) {
  Network net("rca16");
  const Word a = add_pi_word(net, 16, "a");
  const Word b = add_pi_word(net, 16, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");

  FlowParams base;
  base.clk.phases = 4;
  base.use_t1 = false;
  base.opt.enable = true;
  FlowParams t1 = base;
  t1.use_t1 = true;
  const FlowResult off = run_flow(net, base);
  const FlowResult on = run_flow(net, t1);
  // The optimizer collapses full adders to xor3+maj3 pairs (28 JJ vs the
  // 29 JJ T1 body); raw eq. 2 converts nothing here. The extended gain must
  // restore conversion AND the conversions must pay for themselves.
  EXPECT_GT(on.metrics.t1_used, 0u);
  EXPECT_LE(on.metrics.area_jj, off.metrics.area_jj);
  EXPECT_TRUE(random_simulation_equal(on.mapped, net, 16));
}

TEST(T1CostRegression, OptimizedAdder128ConvertsAndWins) {
  const Network net = bench::epfl_adder(128);
  FlowParams base;
  base.clk.phases = 4;
  base.use_t1 = false;
  base.opt.enable = true;
  base.opt.verify = false;  // pass-level SAT guard dominates runtime at 128 bits
  FlowParams t1 = base;
  t1.use_t1 = true;
  const FlowResult off = run_flow(net, base);
  const FlowResult on = run_flow(net, t1);
  EXPECT_GT(on.metrics.t1_used, 0u);
  EXPECT_LE(on.metrics.area_jj, off.metrics.area_jj);
  EXPECT_TRUE(random_simulation_equal(on.mapped, net, 16));
}

TEST(T1CostRegression, GuardDeclinesStandaloneOptimizedAdder) {
  // A lone optimized full adder is the boundary case: the local terms favour
  // fusion (+1 clock share, +9 JJ of splitters vs -1 JJ of logic) but the two
  // dedicated eq.-3 landing DFFs cost 14 JJ, a genuine physical loss of 5 JJ
  // at the default library. The network-estimate gatekeeper must decline.
  Network net = optimized_full_adder();
  FlowParams p;
  p.clk.phases = 4;
  p.opt.enable = false;  // already optimized by construction
  const FlowResult res = run_flow(net, p);
  EXPECT_EQ(res.metrics.t1_used, 0u);
}

TEST(T1CostRegression, SplitterHeavyLibraryFlipsTheStandaloneDecision) {
  // Same candidate, different library: with 6 JJ splitters the three fanin
  // splitters of the gate pair outweigh the landing DFFs and the very same
  // guard now accepts — the decision is genuinely CellLibrary-driven.
  Network net = optimized_full_adder();
  FlowParams p;
  p.clk.phases = 4;
  p.opt.enable = false;
  p.lib.jj_splitter = 6;
  const FlowResult res = run_flow(net, p);
  EXPECT_EQ(res.metrics.t1_used, 1u);
  EXPECT_EQ(res.mapped.count_of(GateType::T1), 1u);
}

// ---------------------------------------------------------------------------
// Golden totals: Table-I circuits under the default and a perturbed library
// ---------------------------------------------------------------------------

struct Golden {
  std::size_t suite_index;
  const char* name;
  bool perturbed;
  std::size_t used;
  std::size_t dffs;
  uint64_t area, logic, dff, splitter, clock;
};

class GoldenTotals : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTotals, FlowReproducesTheRecordedBreakdown) {
  const Golden g = GetParam();
  const auto suite = bench::make_suite_scaled(8);
  FlowParams p;
  p.clk.phases = 4;
  p.use_t1 = true;
  p.opt.enable = true;
  p.opt.verify = false;  // transforms are individually proven; goldens pin results
  if (g.perturbed) {
    p.lib = perturbed_library();
  }
  const FlowResult res = run_flow(suite[g.suite_index].generate(), p);
  EXPECT_EQ(res.metrics.t1_used, g.used);
  EXPECT_EQ(res.metrics.num_dffs, g.dffs);
  EXPECT_EQ(res.metrics.area_jj, g.area);
  EXPECT_EQ(res.metrics.breakdown.logic, g.logic);
  EXPECT_EQ(res.metrics.breakdown.dff, g.dff);
  EXPECT_EQ(res.metrics.breakdown.splitter, g.splitter);
  EXPECT_EQ(res.metrics.breakdown.clock, g.clock);
}

// Recorded from the flow at the time the cost layer was introduced; any
// change to these totals is a deliberate cost-model change and must update
// the goldens (they guarantee perfect determinism of the whole opt + T1 +
// scheduling pipeline, not just plausibility).
INSTANTIATE_TEST_SUITE_P(
    TableOneShrink8, GoldenTotals,
    ::testing::Values(
        Golden{0, "adder", false, 10, 76, 1053, 448, 456, 51, 98},
        Golden{1, "c7552", false, 1, 2, 447, 306, 12, 102, 27},
        // voter: the schedule-aware guard (default since the DFF-lambda +
        // latency-budget acceptance rule) rescues majority-tree fusions the
        // ASAP estimate declines: 67 -> 92 T1 at -190 JJ for +5 DFFs, depth
        // unchanged.
        Golden{4, "voter", false, 92, 31, 7210, 5640, 186, 960, 424},
        Golden{7, "log2", false, 0, 0, 149, 101, 0, 39, 9},
        Golden{0, "adder", true, 6, 72, 1349, 502, 720, 29, 98},
        Golden{1, "c7552", true, 0, 1, 424, 351, 10, 36, 27},
        Golden{4, "voter", true, 0, 0, 7582, 6529, 0, 598, 455},
        Golden{7, "log2", true, 0, 0, 141, 117, 0, 14, 10}),
    [](const ::testing::TestParamInfo<Golden>& info) {
      return std::string(info.param.name) + (info.param.perturbed ? "_pert" : "_default");
    });

}  // namespace
}  // namespace t1sfq
