/// Tests for the physics-validated flow oracle (verify/physics_check.hpp):
/// Table-I circuits pass the oracle across opt/T1 configurations, corrupted
/// schedules are rejected with a witness vector, wrong goldens yield function
/// witnesses, and the analog device probe cross-checks the pulse model.

#include <gtest/gtest.h>

#include <numeric>

#include "benchmarks/suite.hpp"
#include "core/flow.hpp"
#include "obs/metrics.hpp"
#include "random_network_test_util.hpp"
#include "sfq/pulse_sim.hpp"
#include "verify/physics_check.hpp"

namespace t1sfq {
namespace {

using testutil::random_network;

verify::PhysicsCheckParams fast_params() {
  verify::PhysicsCheckParams pp;
  pp.random_vectors = 32;  // unit-test budget; benches run the full default
  pp.max_walking_ones = 16;
  pp.max_hazard_t1 = 8;
  return pp;
}

struct SuiteCase {
  bool opt;
  bool use_t1;
};

class PhysicsOnSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(PhysicsOnSuite, Shrink16TableICircuitsPass) {
  const auto [opt, use_t1] = GetParam();
  for (const auto& bc : bench::make_suite_scaled(16)) {
    FlowParams p;
    p.use_t1 = use_t1;
    p.opt.enable = opt;
    p.physics_check = true;
    p.physics = fast_params();
    const FlowResult res = run_flow(bc.generate(), p);  // throws on oracle FAIL
    EXPECT_TRUE(res.physics.ran) << bc.name;
    EXPECT_TRUE(res.physics.ok) << bc.name << ": " << res.physics.summary();
    EXPECT_GT(res.physics.vectors, 0u) << bc.name;
    EXPECT_GT(res.physics.checked_edges, 0u) << bc.name;
    EXPECT_GE(res.physics.min_margin, 0) << bc.name;
    // Histogram accounts for every checked edge, and no bucket below the
    // reported minimum is populated.
    const uint64_t total = std::accumulate(res.physics.margin_histogram.begin(),
                                           res.physics.margin_histogram.end(),
                                           uint64_t{0});
    EXPECT_EQ(total, res.physics.checked_edges) << bc.name;
    for (int64_t m = 0; m < res.physics.min_margin &&
                        m < static_cast<int64_t>(res.physics.margin_histogram.size() - 1);
         ++m) {
      EXPECT_EQ(res.physics.margin_histogram[static_cast<std::size_t>(m)], 0u)
          << bc.name;
    }
    EXPECT_GT(res.timings.physics_ms, 0.0) << bc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, PhysicsOnSuite,
                         ::testing::Values(SuiteCase{false, false}, SuiteCase{false, true},
                                           SuiteCase{true, false}, SuiteCase{true, true}));

TEST(PhysicsCheck, Shrink8SpotCheckWithT1) {
  // One larger circuit at shrink 8 to exercise deeper DFF spines; the full
  // shrink-4/8 sweep runs in the physics-smoke bench step.
  const auto suite = bench::make_suite_scaled(8);
  FlowParams p;
  p.opt.enable = true;
  p.physics_check = true;
  p.physics = fast_params();
  const FlowResult res = run_flow(suite.front().generate(), p);
  EXPECT_TRUE(res.physics.ok) << res.physics.summary();
  EXPECT_GT(res.physics.hazard_cases, 0u);  // adder maps to T1 cells
}

TEST(PhysicsCheck, SinglePhaseFlowPasses) {
  FlowParams p;
  p.clk.phases = 1;  // every margin is exactly 0: zero-slack everywhere
  p.use_t1 = false;
  p.physics_check = true;
  p.physics = fast_params();
  const FlowResult res = run_flow(random_network(7, 8, 60), p);
  EXPECT_TRUE(res.physics.ok) << res.physics.summary();
  EXPECT_EQ(res.physics.min_margin, 0);
  EXPECT_EQ(res.physics.margin_histogram.size(), 1u);
}

/// Acceptance pin: a deliberately corrupted schedule — one node shifted one
/// phase earlier — is rejected with a witness vector.
TEST(PhysicsCheck, CorruptedScheduleRejectedWithWitness) {
  const Network net = bench::make_suite_scaled(16).front().generate();
  FlowParams p;
  const FlowResult res = run_flow(net, p);

  PhysicalNetlist corrupted = res.physical;
  // Find a clocked consumer fed at gap exactly 1 (a T1 landing slot or an
  // ASAP-tight edge); shifting it one phase earlier makes that gap 0 — a
  // pulse would have to arrive before its producer fires.
  const auto release = release_stages(corrupted.net, corrupted.stage);
  NodeId victim = kNullNode;
  for (const NodeId id : corrupted.net.topo_order()) {
    const Node& node = corrupted.net.node(id);
    if (node.type == GateType::Pi || node.type == GateType::Buf ||
        node.type == GateType::T1Port || node.type == GateType::Const0 ||
        node.type == GateType::Const1) {
      continue;
    }
    for (uint8_t i = 0; i < node.num_fanins; ++i) {
      if (corrupted.stage[id] - release[node.fanin(i)] == 1) {
        victim = id;
        break;
      }
    }
    if (victim != kNullNode) break;
  }
  ASSERT_NE(victim, kNullNode);
  corrupted.stage[victim] -= 1;

  const auto report =
      t1sfq::verify::physics_check(corrupted, p.clk, net, fast_params());
  EXPECT_TRUE(report.ran);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(report.timing_violations, 0u);
  EXPECT_TRUE(report.has_witness);
  EXPECT_EQ(report.witness_kind, "timing");
  EXPECT_EQ(report.witness.size(), net.num_pis());
  EXPECT_FALSE(report.first_violation.empty());
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);

  // The same corruption makes the flow-embedded oracle throw.
  FlowParams strict = p;
  strict.physics_check = true;
  EXPECT_NO_THROW(run_flow(net, strict));  // uncorrupted: oracle passes inline
}

TEST(PhysicsCheck, WrongGoldenYieldsFunctionWitness) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_and(a, b));
  Network wrong;
  const NodeId wa = wrong.add_pi();
  const NodeId wb = wrong.add_pi();
  wrong.add_po(wrong.add_or(wa, wb));

  const FlowResult res = run_flow(net, FlowParams{});
  const auto report =
      t1sfq::verify::physics_check(res.physical, MultiphaseConfig{4}, wrong);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.timing_violations, 0u);
  EXPECT_GT(report.function_mismatches, 0u);
  EXPECT_TRUE(report.has_witness);
  EXPECT_EQ(report.witness_kind, "function");
  // The first mismatching vector must actually disagree: AND != OR on it.
  ASSERT_EQ(report.witness.size(), 2u);
  EXPECT_NE(report.witness[0] && report.witness[1],
            report.witness[0] || report.witness[1]);
}

TEST(PhysicsCheck, DeviceProbeValidatesPulseModelPremises) {
  FlowParams p;
  p.physics_check = true;
  p.physics = fast_params();
  p.physics.random_vectors = 4;
  p.physics.device_probe = true;
  const FlowResult res = run_flow(random_network(3, 6, 30), p);
  EXPECT_TRUE(res.physics.device_probe_ran);
  EXPECT_TRUE(res.physics.device_probe_ok);
  EXPECT_TRUE(res.physics.ok);
}

TEST(PhysicsCheck, MalformedInputsThrow) {
  const Network net = random_network(5, 6, 30);
  const FlowResult res = run_flow(net, FlowParams{});
  const Network other = random_network(6, 7, 30);  // different PI count
  EXPECT_THROW(t1sfq::verify::physics_check(res.physical, MultiphaseConfig{4}, other),
               std::invalid_argument);
  PhysicalNetlist truncated = res.physical;
  truncated.stage.resize(truncated.net.size() / 2);
  EXPECT_THROW(t1sfq::verify::physics_check(truncated, MultiphaseConfig{4}, net),
               std::invalid_argument);
}

TEST(PhysicsCheck, ReportNotRunByDefault) {
  const FlowResult res = run_flow(random_network(9, 6, 30), FlowParams{});
  EXPECT_FALSE(res.physics.ran);
  EXPECT_EQ(res.physics.summary(), "physics check: not run");
  EXPECT_EQ(res.timings.physics_ms, 0.0);
}

TEST(PhysicsCheck, ObsCountersMirrorTheVerdict) {
  obs::Registry::instance().reset();
  obs::ScopedEnable scope(true);
  FlowParams p;
  p.physics_check = true;
  p.physics = fast_params();
  p.physics.random_vectors = 8;
  const FlowResult res = run_flow(random_network(11, 6, 40), p);
  EXPECT_TRUE(res.physics.ok);
  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("verify.physics_checks"), 1u);
  EXPECT_EQ(reg.counter("verify.physics_failures"), 0u);
  EXPECT_EQ(reg.counter("verify.physics_vectors"), res.physics.vectors);
  EXPECT_EQ(reg.gauge("verify.min_margin_stages"), res.physics.min_margin);
  // The margin histogram landed, one sample per checked edge.
  uint64_t hist_count = 0;
  for (const auto& m : reg.snapshot()) {
    if (m.name == "verify.phase_margin_stages") {
      hist_count = m.count;
    }
  }
  EXPECT_EQ(hist_count, res.physics.checked_edges);
  obs::Registry::instance().reset();
}

}  // namespace
}  // namespace t1sfq
