#include "solver/lp.hpp"

#include <gtest/gtest.h>

namespace t1sfq {
namespace {

TEST(Lp, UnconstrainedMinimumAtLowerBounds) {
  LinearProgram lp;
  const int x = lp.add_variable(2.0, 10.0, 1.0);
  const int y = lp.add_variable(3.0, 10.0, 2.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[y], 3.0, 1e-6);
  EXPECT_NEAR(sol.objective, 8.0, 1e-6);
}

TEST(Lp, ClassicTwoVariableMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (as min of negative).
  LinearProgram lp;
  const int x = lp.add_variable(0.0, kLpInfinity, -3.0);
  const int y = lp.add_variable(0.0, kLpInfinity, -5.0);
  lp.add_row({{x, 1.0}}, -kLpInfinity, 4.0);
  lp.add_row({{y, 2.0}}, -kLpInfinity, 12.0);
  lp.add_row({{x, 3.0}, {y, 2.0}}, -kLpInfinity, 18.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[y], 6.0, 1e-6);
  EXPECT_NEAR(sol.objective, -36.0, 1e-6);
}

TEST(Lp, GreaterEqualConstraints) {
  // min x + y s.t. x + y >= 4, x - y >= -2.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, kLpInfinity, 1.0);
  const int y = lp.add_variable(0.0, kLpInfinity, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 4.0, kLpInfinity);
  lp.add_row({{x, 1.0}, {y, -1.0}}, -2.0, kLpInfinity);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-6);
}

TEST(Lp, EqualityConstraint) {
  // min 2x + 3y s.t. x + y = 10, x <= 6.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 6.0, 2.0);
  const int y = lp.add_variable(0.0, kLpInfinity, 3.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 10.0, 10.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 6.0, 1e-6);
  EXPECT_NEAR(sol.x[y], 4.0, 1e-6);
  EXPECT_NEAR(sol.objective, 24.0, 1e-6);
}

TEST(Lp, InfeasibleDetected) {
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_row({{x, 1.0}}, 2.0, kLpInfinity);  // x >= 2 but x <= 1
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Lp, UnboundedDetected) {
  LinearProgram lp;
  (void)lp.add_variable(0.0, kLpInfinity, -1.0);  // min -x, x free upward
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(Lp, RangeRow) {
  // 2 <= x + y <= 3, minimize x with y <= 1.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, kLpInfinity, 1.0);
  const int y = lp.add_variable(0.0, 1.0, 0.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 2.0, 3.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-6);
}

TEST(Lp, ShiftedLowerBounds) {
  // Variables with nonzero lower bounds shift correctly through rows.
  LinearProgram lp;
  const int x = lp.add_variable(5.0, kLpInfinity, 1.0);
  const int y = lp.add_variable(-3.0, kLpInfinity, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 4.0, kLpInfinity);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  // Optimum: x = 5 (lb), y = max(-3, 4 - 5) = -1? No: x+y >= 4 with min sum is
  // exactly 4, but both variables also respect their lower bounds: 5 + (-1).
  EXPECT_NEAR(sol.objective, 4.0, 1e-6);
  EXPECT_GE(sol.x[x], 5.0 - 1e-6);
  EXPECT_GE(sol.x[y], -3.0 - 1e-6);
}

TEST(Lp, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, kLpInfinity, -1.0);
  const int y = lp.add_variable(0.0, kLpInfinity, -1.0);
  for (int k = 1; k <= 6; ++k) {
    lp.add_row({{x, static_cast<double>(k)}, {y, static_cast<double>(k)}}, -kLpInfinity,
               2.0 * k);
  }
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-6);
}

TEST(Lp, PhaseAssignmentShapedInstance) {
  // A miniature of the paper's ILP relaxation: chain a -> b -> c with
  // sigma_b - sigma_a >= 1, sigma_c - sigma_b >= 1, and a DFF-count variable
  // m with 4m >= sigma_c - sigma_a - 4: LP optimum keeps m at 0.
  LinearProgram lp;
  const int sa = lp.add_variable(0.0, 100.0, 0.0);
  const int sb = lp.add_variable(0.0, 100.0, 0.0);
  const int sc = lp.add_variable(0.0, 100.0, 0.0);
  const int m = lp.add_variable(0.0, 100.0, 1.0);
  lp.add_row({{sb, 1.0}, {sa, -1.0}}, 1.0, kLpInfinity);
  lp.add_row({{sc, 1.0}, {sb, -1.0}}, 1.0, kLpInfinity);
  lp.add_row({{m, 4.0}, {sc, -1.0}, {sa, 1.0}}, -4.0, kLpInfinity);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-6);
  EXPECT_GE(sol.x[sc] - sol.x[sb], 1.0 - 1e-6);
}

}  // namespace
}  // namespace t1sfq
