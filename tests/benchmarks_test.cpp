#include "benchmarks/epfl.hpp"
#include "benchmarks/iscas.hpp"
#include "benchmarks/suite.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "benchmarks/arith.hpp"
#include "network/simulation.hpp"

namespace t1sfq {
namespace {

using bench::BenchmarkCase;

/// Checks a generator against its reference model on random vectors.
void check_case(const BenchmarkCase& c, unsigned vectors, uint64_t seed) {
  const Network net = c.generate();
  std::mt19937_64 rng(seed);
  for (unsigned i = 0; i < vectors; ++i) {
    std::vector<bool> in(net.num_pis());
    for (auto&& b : in) {
      b = rng() & 1;
    }
    const auto expect = c.reference(in);
    const auto got = simulate(net, in);
    ASSERT_EQ(got.size(), expect.size()) << c.name;
    EXPECT_EQ(got, expect) << c.name << " vector " << i;
  }
}

TEST(Benchmarks, AdderMatchesReference) {
  check_case(bench::make_suite_scaled(4)[0], 100, 11);
}

TEST(Benchmarks, C7552MatchesReference) {
  check_case(bench::make_suite_scaled(4)[1], 100, 12);
}

TEST(Benchmarks, C6288MatchesReference) {
  check_case(bench::make_suite_scaled(4)[2], 100, 13);
}

TEST(Benchmarks, SinMatchesReference) {
  check_case(bench::make_suite_scaled(2)[3], 100, 14);
}

TEST(Benchmarks, VoterMatchesReference) {
  check_case(bench::make_suite_scaled(8)[4], 100, 15);
}

TEST(Benchmarks, SquareMatchesReference) {
  check_case(bench::make_suite_scaled(4)[5], 100, 16);
}

TEST(Benchmarks, MultiplierMatchesReference) {
  check_case(bench::make_suite_scaled(4)[6], 100, 17);
}

TEST(Benchmarks, Log2MatchesReference) {
  check_case(bench::make_suite_scaled(2)[7], 100, 18);
}

TEST(Benchmarks, AdderFullWidthSpotCheck) {
  // The real 128-bit Table-I adder on a few vectors (word-parallel 64-wide).
  const Network net = bench::epfl_adder(128);
  EXPECT_EQ(net.num_pis(), 256u);
  EXPECT_EQ(net.num_pos(), 129u);
  std::mt19937_64 rng(19);
  std::vector<bool> in(256);
  for (auto&& b : in) {
    b = rng() & 1;
  }
  const auto got = simulate(net, in);
  EXPECT_EQ(got, bench::epfl_adder_ref(128, in));
}

TEST(Benchmarks, SinIsMonotoneOnQuarterWave) {
  // sin on [0, pi/2) is increasing; the fixed-point network must be
  // non-decreasing over increasing inputs.
  const unsigned bits = 8;
  const Network net = bench::epfl_sin(bits);
  uint64_t prev = 0;
  for (uint64_t x = 0; x < 256; x += 5) {
    const uint64_t y = word_to_uint(simulate(net, uint_to_word(x, bits)));
    // Truncating products can jitter by a couple of LSBs near the crest.
    EXPECT_GE(y + 2, prev) << "x=" << x;
    prev = y;
  }
}

TEST(Benchmarks, SinApproximatesTheRealThing) {
  const unsigned bits = 10;
  const Network net = bench::epfl_sin(bits);
  for (uint64_t x = 0; x < (1u << bits); x += 37) {
    const double theta = (static_cast<double>(x) / (1 << bits)) * 1.5707963267948966;
    const double y = static_cast<double>(word_to_uint(simulate(net, uint_to_word(x, bits)))) /
                     (1 << bits);
    EXPECT_NEAR(y, std::sin(theta), 0.02) << "x=" << x;
  }
}

TEST(Benchmarks, Log2ExactOnPowersOfTwo) {
  const unsigned bits = 16, frac = 8;
  const Network net = bench::epfl_log2(bits, frac);
  for (unsigned p = 0; p < bits; ++p) {
    const auto out = simulate(net, uint_to_word(uint64_t{1} << p, bits));
    // Integer part = p, fraction = 0.
    EXPECT_EQ(word_to_uint({out.begin(), out.begin() + 4}), p);
    EXPECT_EQ(word_to_uint({out.begin() + 4, out.end()}), 0u);
  }
}

TEST(Benchmarks, Log2ZeroInputYieldsZero) {
  const Network net = bench::epfl_log2(8, 4);
  const auto out = simulate(net, uint_to_word(0, 8));
  for (const bool b : out) {
    EXPECT_FALSE(b);
  }
}

TEST(Benchmarks, Log2FractionApproximatesMath) {
  const unsigned bits = 12, frac = 6;
  const Network net = bench::epfl_log2(bits, frac);
  for (uint64_t x : {3ull, 7ull, 100ull, 1000ull, 4095ull}) {
    const auto out = simulate(net, uint_to_word(x, bits));
    const unsigned ibits = 4;  // ceil(log2(12))
    const double ipart = static_cast<double>(word_to_uint({out.begin(), out.begin() + ibits}));
    const double fpart =
        static_cast<double>(word_to_uint({out.begin() + ibits, out.end()})) / (1 << frac);
    EXPECT_NEAR(ipart + fpart, std::log2(static_cast<double>(x)), 0.02) << "x=" << x;
  }
}

TEST(Benchmarks, VoterThreshold) {
  const unsigned n = 15;
  const Network net = bench::epfl_voter(n);
  for (unsigned ones = 0; ones <= n; ++ones) {
    std::vector<bool> in(n, false);
    for (unsigned i = 0; i < ones; ++i) {
      in[i] = true;
    }
    EXPECT_EQ(simulate(net, in)[0], ones >= n / 2 + 1) << ones << " ones";
  }
}

TEST(Benchmarks, SuiteHasEightTableRows) {
  const auto suite = bench::make_suite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0].name, "adder");
  EXPECT_EQ(suite[1].name, "c7552");
  EXPECT_EQ(suite[2].name, "c6288");
  EXPECT_EQ(suite[3].name, "sin");
  EXPECT_EQ(suite[4].name, "voter");
  EXPECT_EQ(suite[5].name, "square");
  EXPECT_EQ(suite[6].name, "multiplier");
  EXPECT_EQ(suite[7].name, "log2");
}

TEST(Benchmarks, ScaledSuiteKeepsOddVoter) {
  for (unsigned s : {2u, 4u, 8u, 16u}) {
    const auto suite = bench::make_suite_scaled(s);
    const Network voter = suite[4].generate();
    EXPECT_EQ(voter.num_pis() % 2, 1u) << "shrink " << s;
  }
}

TEST(Benchmarks, GeneratorsAreDeterministic) {
  const auto a = bench::epfl_multiplier(8);
  const auto b = bench::epfl_multiplier(8);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(random_simulation_equal(a, b, 2));
}

TEST(Benchmarks, SquareSharesPartialProducts) {
  // a*a through the generic multiplier still shares and-gates (a_i & a_j).
  const Network sq = bench::epfl_square(8);
  const Network mult = bench::epfl_multiplier(8);
  EXPECT_LT(sq.count_of(GateType::And2) + 2 * sq.num_pis(),
            mult.count_of(GateType::And2) + mult.num_pis());
}

}  // namespace
}  // namespace t1sfq
