#include "network/equivalence.hpp"

#include <gtest/gtest.h>

#include "network/simulation.hpp"

namespace t1sfq {
namespace {

Network ripple_adder(int bits) {
  Network net("rca");
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi());
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi());
  NodeId carry = net.get_const0();
  for (int i = 0; i < bits; ++i) {
    const NodeId axb = net.add_xor(a[i], b[i]);
    net.add_po(net.add_xor(axb, carry));
    carry = net.add_or(net.add_and(a[i], b[i]), net.add_and(axb, carry));
  }
  net.add_po(carry);
  return net;
}

Network maj_adder(int bits) {
  Network net("maj_rca");
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi());
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi());
  NodeId carry = net.get_const0();
  for (int i = 0; i < bits; ++i) {
    net.add_po(net.add_xor3(a[i], b[i], carry));
    carry = net.add_maj(a[i], b[i], carry);
  }
  net.add_po(carry);
  return net;
}

TEST(Equivalence, IdenticalNetworksAreEquivalent) {
  const Network a = ripple_adder(4);
  const auto r = check_equivalence_sat(a, a);
  EXPECT_EQ(r.result, EquivalenceResult::Equivalent);
}

TEST(Equivalence, StructurallyDifferentAddersAreEquivalent) {
  const Network a = ripple_adder(6);
  const Network b = maj_adder(6);
  const auto r = check_equivalence_sat(a, b);
  EXPECT_EQ(r.result, EquivalenceResult::Equivalent);
}

TEST(Equivalence, T1FullAdderEquivalentToGates) {
  Network gates;
  {
    const NodeId a = gates.add_pi();
    const NodeId b = gates.add_pi();
    const NodeId c = gates.add_pi();
    const NodeId axb = gates.add_xor(a, b);
    gates.add_po(gates.add_xor(axb, c));
    gates.add_po(gates.add_or(gates.add_and(a, b), gates.add_and(axb, c)));
  }
  Network t1net;
  {
    const NodeId a = t1net.add_pi();
    const NodeId b = t1net.add_pi();
    const NodeId c = t1net.add_pi();
    const NodeId t1 = t1net.add_t1(a, b, c);
    t1net.add_po(t1net.add_t1_port(t1, T1PortFn::Sum));
    t1net.add_po(t1net.add_t1_port(t1, T1PortFn::Carry));
  }
  EXPECT_EQ(check_equivalence_sat(gates, t1net).result, EquivalenceResult::Equivalent);
}

TEST(Equivalence, DetectsSingleBitError) {
  const Network a = ripple_adder(5);
  Network b = ripple_adder(5);
  // Corrupt: replace the last PO (carry-out) with AND of the top bits.
  Network c("bad");
  std::vector<NodeId> x, y;
  for (int i = 0; i < 5; ++i) x.push_back(c.add_pi());
  for (int i = 0; i < 5; ++i) y.push_back(c.add_pi());
  NodeId carry = c.get_const0();
  for (int i = 0; i < 5; ++i) {
    const NodeId axb = c.add_xor(x[i], y[i]);
    c.add_po(c.add_xor(axb, carry));
    carry = i == 3 ? c.add_and(x[i], y[i])  // dropped the propagate term
                   : c.add_or(c.add_and(x[i], y[i]), c.add_and(axb, carry));
  }
  c.add_po(carry);
  const auto r = check_equivalence_sat(a, c);
  ASSERT_EQ(r.result, EquivalenceResult::NotEquivalent);
  // The counterexample must actually distinguish the two networks.
  const auto oa = simulate(a, r.counterexample);
  const auto oc = simulate(c, r.counterexample);
  EXPECT_NE(oa, oc);
}

TEST(Equivalence, CounterexampleFromSimulationPath) {
  Network a, b;
  const NodeId pa = a.add_pi();
  a.add_po(pa);
  const NodeId pb = b.add_pi();
  b.add_po(b.add_not(pb));
  const auto r = check_equivalence(a, b);
  EXPECT_EQ(r.result, EquivalenceResult::NotEquivalent);
}

TEST(Equivalence, InterfaceMismatchRejected) {
  Network a, b;
  a.add_pi();
  a.add_po(a.get_const0());
  b.add_pi();
  b.add_pi();
  b.add_po(b.get_const0());
  EXPECT_EQ(check_equivalence_sat(a, b).result, EquivalenceResult::NotEquivalent);
}

TEST(Equivalence, ConstantsAndDeadNodesHandled) {
  Network a;
  const NodeId x = a.add_pi();
  const NodeId junk = a.add_and(x, a.get_const0());  // folds to const0
  (void)junk;
  a.add_po(a.get_const0());
  Network b;
  const NodeId y = b.add_pi();
  b.add_po(b.add_and(y, b.add_not(y)));  // folds to const0
  EXPECT_EQ(check_equivalence_sat(a, b).result, EquivalenceResult::Equivalent);
}

TEST(Equivalence, DffTransparencyInSatEncoding) {
  Network a = ripple_adder(3);
  Network b("dffed");
  std::vector<NodeId> x, y;
  for (int i = 0; i < 3; ++i) x.push_back(b.add_pi());
  for (int i = 0; i < 3; ++i) y.push_back(b.add_pi());
  NodeId carry = b.get_const0();
  for (int i = 0; i < 3; ++i) {
    const NodeId axb = b.add_xor(x[i], y[i]);
    b.add_po(b.add_dff(b.add_xor(axb, carry)));
    carry = b.add_dff(b.add_or(b.add_and(x[i], y[i]), b.add_and(axb, carry)));
  }
  b.add_po(carry);
  EXPECT_EQ(check_equivalence_sat(a, b).result, EquivalenceResult::Equivalent);
}

TEST(Equivalence, MediumAdderCompletesQuickly) {
  const Network a = ripple_adder(16);
  const Network b = maj_adder(16);
  const auto r = check_equivalence(a, b);
  EXPECT_EQ(r.result, EquivalenceResult::Equivalent);
}

}  // namespace
}  // namespace t1sfq
