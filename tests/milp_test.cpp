#include "solver/milp.hpp"

#include <gtest/gtest.h>

namespace t1sfq {
namespace {

TEST(Milp, LpIntegralSolutionPassesThrough) {
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}}, 3.0, kLpInfinity);
  const auto sol = solve_milp(lp, {x});
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 3.0, 1e-6);
}

TEST(Milp, KnapsackBranchAndBound) {
  // max 5a + 4b + 3c  s.t. 2a + 3b + c <= 5, binary — optimum 11 at a=1,c=1...
  // actually a=1,b=0,c=1 gives value 8 weight 3; a=1,b=1 weight 5 value 9;
  // check exact: enumerate: a,b,c in {0,1}: best is a=1,b=1,c=0 -> 9 (w=5);
  // a=1,b=0,c=1 -> 8 (w=3); a=1,b=1,c=1 -> w=6 infeasible. Optimum = 9.
  LinearProgram lp;
  const int a = lp.add_variable(0.0, 1.0, -5.0);
  const int b = lp.add_variable(0.0, 1.0, -4.0);
  const int c = lp.add_variable(0.0, 1.0, -3.0);
  lp.add_row({{a, 2.0}, {b, 3.0}, {c, 1.0}}, -kLpInfinity, 5.0);
  const auto sol = solve_milp(lp, {a, b, c});
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -9.0, 1e-6);
  EXPECT_NEAR(sol.x[a], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[b], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[c], 0.0, 1e-6);
}

TEST(Milp, FractionalLpGetsRounded) {
  // min -x - y s.t. 2x + 2y <= 3, integers: LP optimum is fractional (1.5 sum),
  // integer optimum is x + y = 1.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 10.0, -1.0);
  const int y = lp.add_variable(0.0, 10.0, -1.0);
  lp.add_row({{x, 2.0}, {y, 2.0}}, -kLpInfinity, 3.0);
  const auto sol = solve_milp(lp, {x, y});
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -1.0, 1e-6);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}}, 0.4, 0.6);
  EXPECT_EQ(solve_milp(lp, {x}).status, MilpStatus::Infeasible);
}

TEST(Milp, MixedIntegerKeepsContinuousVars) {
  // min y s.t. y >= x - 0.5, x integer >= 1.2 -> x = 2, y = 1.5.
  LinearProgram lp;
  const int x = lp.add_variable(1.2, 10.0, 0.0);
  const int y = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{y, 1.0}, {x, -1.0}}, -0.5, kLpInfinity);
  const auto sol = solve_milp(lp, {x});
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[y], 1.5, 1e-6);
}

TEST(Milp, CeilingLinearization) {
  // The flow's DFF-count term: m >= ceil((sc - sa)/n) - 1 linearized as
  // n*m >= sc - sa - n. With sc - sa forced to 9 and n = 4: m = ceil(9/4)-1 = 2.
  LinearProgram lp;
  const int sa = lp.add_variable(0.0, 100.0, 0.0);
  const int sc = lp.add_variable(0.0, 100.0, 0.0);
  const int m = lp.add_variable(0.0, 100.0, 1.0);
  lp.add_row({{sc, 1.0}, {sa, -1.0}}, 9.0, 9.0);
  lp.add_row({{m, 4.0}, {sc, -1.0}, {sa, 1.0}}, -4.0, kLpInfinity);
  const auto sol = solve_milp(lp, {sa, sc, m});
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.x[m], 2.0, 1e-6);
}

TEST(Milp, NodeLimitFailsSoft) {
  // A small hard instance with a tiny node budget returns NodeLimit instead
  // of hanging (or Optimal if solved within the budget).
  LinearProgram lp;
  std::vector<int> vars;
  for (int i = 0; i < 10; ++i) {
    vars.push_back(lp.add_variable(0.0, 1.0, (i % 2) ? -3.0 : -2.0));
  }
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 10; ++i) {
    row.push_back({vars[i], 2.0 + (i % 3)});
  }
  lp.add_row(row, -kLpInfinity, 7.5);
  MilpParams p;
  p.max_nodes = 2;
  const auto sol = solve_milp(lp, vars, p);
  EXPECT_TRUE(sol.status == MilpStatus::NodeLimit || sol.status == MilpStatus::Optimal);
  EXPECT_LE(sol.nodes_explored, 2u + 1);
}

TEST(Milp, EqualityWithIntegers) {
  // 3x + 5y = 14, minimize x + y over nonnegative integers: x=3, y=1.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 20.0, 1.0);
  const int y = lp.add_variable(0.0, 20.0, 1.0);
  lp.add_row({{x, 3.0}, {y, 5.0}}, 14.0, 14.0);
  const auto sol = solve_milp(lp, {x, y});
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 3.0, 1e-6);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-6);
}

}  // namespace
}  // namespace t1sfq
