#include "network/aig.hpp"

#include <gtest/gtest.h>

#include <random>

namespace t1sfq {
namespace {

TEST(Aig, ConstantsAndFolding) {
  Aig aig;
  const auto a = aig.add_pi();
  EXPECT_EQ(aig.add_and(a, Aig::kFalse), Aig::kFalse);
  EXPECT_EQ(aig.add_and(a, Aig::kTrue), a);
  EXPECT_EQ(aig.add_and(a, a), a);
  EXPECT_EQ(aig.add_and(a, Aig::lit_not(a)), Aig::kFalse);
}

TEST(Aig, StructuralHashing) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  EXPECT_EQ(aig.add_and(a, b), aig.add_and(b, a));
  EXPECT_EQ(aig.num_ands(), 1u);
  // Complemented inputs hash separately.
  EXPECT_NE(aig.add_and(a, b), aig.add_and(Aig::lit_not(a), b));
}

TEST(Aig, LiteralHelpers) {
  EXPECT_EQ(Aig::lit_node(Aig::make_lit(5, true)), 5u);
  EXPECT_TRUE(Aig::lit_compl(Aig::make_lit(5, true)));
  EXPECT_EQ(Aig::lit_not(Aig::lit_not(Aig::make_lit(7, false))), Aig::make_lit(7, false));
}

TEST(Aig, XorViaAnds) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(aig.add_xor(a, b));
  const auto tts = aig.simulate_truth_tables();
  EXPECT_EQ(tts[0].to_binary(), "0110");
  EXPECT_EQ(aig.num_ands(), 3u);
}

TEST(Aig, MuxAndMaj) {
  Aig aig;
  const auto s = aig.add_pi();
  const auto t = aig.add_pi();
  const auto e = aig.add_pi();
  aig.add_po(aig.add_mux(s, t, e));
  aig.add_po(aig.add_maj(s, t, e));
  const auto tts = aig.simulate_truth_tables();
  // mux(s,t,e) with s = var0: s ? t : e.
  EXPECT_EQ(tts[0], TruthTable::ite(TruthTable::nth_var(3, 0), TruthTable::nth_var(3, 1),
                                    TruthTable::nth_var(3, 2)));
  EXPECT_EQ(tts[1], tt3::maj3());
}

TEST(Aig, ComplementedPo) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  aig.add_po(Aig::lit_not(aig.add_and(a, b)));
  const auto tts = aig.simulate_truth_tables();
  EXPECT_EQ(tts[0].to_binary(), "0111");  // NAND
}

TEST(Aig, DepthOfBalancedTree) {
  Aig aig;
  std::vector<Aig::Lit> layer;
  for (int i = 0; i < 8; ++i) {
    layer.push_back(aig.add_pi());
  }
  while (layer.size() > 1) {
    std::vector<Aig::Lit> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(aig.add_and(layer[i], layer[i + 1]));
    }
    layer = next;
  }
  aig.add_po(layer[0]);
  EXPECT_EQ(aig.depth(), 3u);
  EXPECT_EQ(aig.num_ands(), 7u);
}

TEST(Aig, SimulationMatchesSemantics) {
  Aig aig;
  const auto a = aig.add_pi();
  const auto b = aig.add_pi();
  const auto c = aig.add_pi();
  aig.add_po(aig.add_and(aig.add_or(a, b), Aig::lit_not(c)));
  std::mt19937_64 rng(5);
  const uint64_t wa = rng(), wb = rng(), wc = rng();
  const auto values = aig.simulate_words({wa, wb, wc});
  const auto po = aig.pos()[0];
  const uint64_t got = Aig::lit_compl(po) ? ~values[Aig::lit_node(po)]
                                          : values[Aig::lit_node(po)];
  EXPECT_EQ(got, (wa | wb) & ~wc);
}

TEST(Aig, WrongPiCountThrows) {
  Aig aig;
  aig.add_pi();
  EXPECT_THROW(aig.simulate_words({1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace t1sfq
