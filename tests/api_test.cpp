/// \file api_test.cpp
/// \brief Public API facade: builder, config signature, non-throwing binding,
/// and the typed error taxonomy it reports through.

#include <gtest/gtest.h>

#include <sstream>

#include "benchmarks/arith.hpp"
#include "core/api.hpp"
#include "network/io.hpp"

namespace t1sfq {
namespace {

Network adder_net() {
  Network net("adder3");
  const Word a = add_pi_word(net, 3, "a");
  const Word b = add_pi_word(net, 3, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  return net;
}

TEST(ApiBuilder, SetsEveryKnob) {
  const FlowRequest req = FlowRequest::Builder(adder_net())
                              .circuit("renamed")
                              .phases(6)
                              .use_t1(false)
                              .engine(PhaseEngine::ExactMilp)
                              .output_slack(3)
                              .optimize(true)
                              .opt_rounds(2)
                              .physics_check(true)
                              .observe(true)
                              .session("sid")
                              .return_netlist(true)
                              .build();
  EXPECT_EQ(req.circuit, "renamed");
  EXPECT_EQ(req.phases, 6u);
  EXPECT_FALSE(req.use_t1);
  EXPECT_EQ(req.engine, PhaseEngine::ExactMilp);
  EXPECT_EQ(req.output_slack, 3);
  EXPECT_TRUE(req.optimize);
  EXPECT_EQ(req.opt_rounds, 2u);
  EXPECT_TRUE(req.physics_check);
  EXPECT_TRUE(req.observe);
  EXPECT_EQ(req.session, "sid");
  EXPECT_TRUE(req.return_netlist);
  EXPECT_EQ(req.network.num_pis(), 6u);
}

TEST(ApiBuilder, CircuitDefaultsToNetworkName) {
  const FlowRequest req = FlowRequest::Builder(adder_net()).build();
  EXPECT_EQ(req.circuit, "adder3");
}

TEST(ApiConfigSignature, EveryResultKnobParticipates) {
  const FlowRequest base = FlowRequest::Builder(adder_net()).build();
  const std::string sig = base.config_signature();
  EXPECT_NE(sig.find(kFlowSchema), std::string::npos);

  const auto differs = [&](FlowRequest changed) {
    return changed.config_signature() != sig;
  };
  FlowRequest r = base;
  r.phases = 5;
  EXPECT_TRUE(differs(r));
  r = base;
  r.use_t1 = !base.use_t1;
  EXPECT_TRUE(differs(r));
  r = base;
  r.engine = PhaseEngine::ExactMilp;
  EXPECT_TRUE(differs(r));
  r = base;
  r.output_slack = 1;
  EXPECT_TRUE(differs(r));
  r = base;
  r.optimize = true;
  EXPECT_TRUE(differs(r));
  r = base;
  r.opt_rounds = 9;
  EXPECT_TRUE(differs(r));
  r = base;
  r.physics_check = true;
  EXPECT_TRUE(differs(r));

  // Routing / presentation fields must NOT key different cache entries.
  r = base;
  r.circuit = "other";
  r.observe = true;
  r.session = "sid";
  r.return_netlist = true;
  EXPECT_EQ(r.config_signature(), sig);
}

TEST(ApiRunFlow, MatchesTheInternalBinding) {
  const Network net = adder_net();
  const FlowResponse resp = run_flow(FlowRequest::Builder(net).build());
  ASSERT_TRUE(resp.ok) << resp.message;
  EXPECT_EQ(resp.tier, FlowTier::Cold);

  // The internal equivalent of a default v1 request: `FlowParams` enables the
  // pre-mapping optimizer by default, the v1 surface does not (the baseline
  // flow is deterministic and ECO-compatible; optimization is opt-in).
  FlowParams p;
  p.clk.phases = 4;
  p.opt.enable = false;
  const FlowResult internal = run_flow(net, p);
  EXPECT_EQ(resp.metrics.num_dffs, internal.metrics.num_dffs);
  EXPECT_EQ(resp.metrics.area_jj, internal.metrics.area_jj);
  EXPECT_EQ(resp.metrics.depth_cycles, internal.metrics.depth_cycles);
  EXPECT_EQ(resp.metrics.t1_used, internal.metrics.t1_used);
}

TEST(ApiRunFlow, ReturnsNetlistOnRequest) {
  const FlowResponse without = run_flow(FlowRequest::Builder(adder_net()).build());
  ASSERT_TRUE(without.ok);
  EXPECT_TRUE(without.netlist_blif.empty());
  const FlowResponse with =
      run_flow(FlowRequest::Builder(adder_net()).return_netlist(true).build());
  ASSERT_TRUE(with.ok);
  ASSERT_FALSE(with.netlist_blif.empty());
  std::istringstream ss(with.netlist_blif);
  EXPECT_EQ(read_blif(ss).num_pis(), 6u);
}

TEST(ApiRunFlow, MisuseComesBackAsStructuredError) {
  // The internal binding throws std::invalid_argument; the facade reports it.
  const FlowResponse resp =
      run_flow(FlowRequest::Builder(adder_net()).phases(3).use_t1(true).build());
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, ErrorCode::InvalidRequest);
  EXPECT_FALSE(resp.message.empty());
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomy, CodesRoundTripThroughStrings) {
  for (const ErrorCode code :
       {ErrorCode::Internal, ErrorCode::ParseError, ErrorCode::IoError,
        ErrorCode::InvalidRequest, ErrorCode::InfeasibleSchedule,
        ErrorCode::PhysicsViolation, ErrorCode::CacheCorruption,
        ErrorCode::UnknownSession, ErrorCode::Unsupported}) {
    EXPECT_EQ(error_code_from_string(to_string(code)), code);
  }
  EXPECT_EQ(error_code_from_string("from-the-future"), ErrorCode::Internal);
}

TEST(ErrorTaxonomy, TypedErrorsPreserveWhatText) {
  const ParseError e("read_blif: malformed cube line: xyz");
  EXPECT_EQ(e.code(), ErrorCode::ParseError);
  EXPECT_STREQ(e.what(), "read_blif: malformed cube line: xyz");
  // Pre-taxonomy catch sites keep working.
  try {
    throw InfeasibleScheduleError("no feasible phase assignment");
  } catch (const std::runtime_error& re) {
    EXPECT_STREQ(re.what(), "no feasible phase assignment");
  }
}

TEST(ErrorTaxonomy, ClassifiesCaughtExceptions) {
  EXPECT_EQ(error_code_of(ParseError("x")), ErrorCode::ParseError);
  EXPECT_EQ(error_code_of(CacheCorruptionError("x")), ErrorCode::CacheCorruption);
  EXPECT_EQ(error_code_of(std::invalid_argument("x")), ErrorCode::InvalidRequest);
  EXPECT_EQ(error_code_of(std::runtime_error("x")), ErrorCode::Internal);
}

TEST(ErrorTaxonomy, BlifParserThrowsTyped) {
  std::istringstream bad(".model x\n.frobnicate\n.end\n");
  try {
    read_blif(bad);
    FAIL() << "unsupported directive must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::ParseError);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

}  // namespace
}  // namespace t1sfq
