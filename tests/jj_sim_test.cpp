#include "sfq/jj_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace t1sfq {
namespace jj {
namespace {

TEST(JjSim, RcDischargeMatchesAnalytic) {
  // Current step into an RC: v(t) = I*R*(1 - exp(-t/RC)).
  Circuit c;
  const int n = c.add_node();
  const double r = 10.0, cap = 1e-12, i0 = 1e-4;
  c.add_resistor(n, 0, r);
  c.add_capacitor(n, 0, cap);
  c.add_dc_bias(n, i0);
  TransientParams p;
  p.t_end = 50e-12;
  p.dt = 0.02e-12;
  const auto res = simulate(c, p);
  ASSERT_TRUE(res.converged);
  for (std::size_t k = 0; k < res.time.size(); k += 100) {
    const double expect = i0 * r * (1.0 - std::exp(-res.time[k] / (r * cap)));
    EXPECT_NEAR(res.node_voltage[n][k], expect, 0.03 * i0 * r) << "t=" << res.time[k];
  }
}

TEST(JjSim, InductorCurrentRampsLinearly) {
  // Voltage-ish source: current bias through R into L gives i_L -> I0 with
  // time constant L/R.
  Circuit c;
  const int n = c.add_node();
  const double r = 5.0, l = 10e-12, i0 = 1e-4;
  c.add_resistor(n, 0, r);
  c.add_inductor(n, 0, l);
  c.add_dc_bias(n, i0);
  TransientParams p;
  p.t_end = 30e-12;
  p.dt = 0.01e-12;
  const auto res = simulate(c, p);
  ASSERT_TRUE(res.converged);
  // After >> L/R = 2 ps, the inductor shorts the node: v -> 0.
  EXPECT_NEAR(res.node_voltage[n].back(), 0.0, 1e-6);
}

TEST(JjSim, SubcriticalBiasKeepsJunctionSuperconducting) {
  Circuit c;
  const int n = c.add_node();
  JjParams jp;
  const int j = c.add_jj(n, 0, jp);
  c.add_dc_bias(n, 0.7 * jp.ic);
  TransientParams p;
  p.t_end = 100e-12;
  const auto res = simulate(c, p);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.pulse_count(j), 0u);               // no phase slips
  EXPECT_LT(std::fabs(res.jj_phase[j].back()), kPi / 2);  // settled below sin^-1(0.7)+margin
  EXPECT_NEAR(res.jj_phase[j].back(), std::asin(0.7), 0.05);
}

TEST(JjSim, OvercriticalBiasRunsFreely) {
  // I > Ic: the junction enters the voltage state and slips continuously;
  // RSJ theory gives V_dc = R*sqrt(I^2 - Ic^2) for negligible capacitance.
  Circuit c;
  const int n = c.add_node();
  JjParams jp;
  jp.c = 1e-15;  // nearly overdamped ideal RSJ
  const int j = c.add_jj(n, 0, jp);
  const double bias = 1.5 * jp.ic;
  c.add_dc_bias(n, bias);
  TransientParams p;
  p.t_end = 200e-12;
  p.dt = 0.01e-12;
  const auto res = simulate(c, p);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.pulse_count(j), 5u);
  // Average voltage from phase slope over the second half of the run.
  const std::size_t half = res.time.size() / 2;
  const double dphi = res.jj_phase[j].back() - res.jj_phase[j][half];
  const double dt = res.time.back() - res.time[half];
  const double v_avg = dphi / dt * kPhi0 / (2 * kPi);
  const double v_rsj = jp.r * std::sqrt(bias * bias - jp.ic * jp.ic);
  EXPECT_NEAR(v_avg, v_rsj, 0.08 * v_rsj);
}

TEST(JjSim, PulseAreaIsOneFluxQuantum) {
  // A triggered 2*pi slip transfers one flux quantum: integral v dt tracks
  // phi0/(2*pi) * delta_phi, and delta_phi = 2*pi plus the static tilt
  // (asin of the bias fraction) the junction returns to.
  Circuit c;
  const int n = c.add_node();
  JjParams jp;
  const int j = c.add_jj(n, 0, jp);
  c.add_dc_bias(n, 0.7 * jp.ic);
  c.add_pulse(n, 20e-12, 1.0 * jp.ic, 1e-12);  // trigger exactly one slip
  TransientParams p;
  p.t_end = 60e-12;
  p.dt = 0.01e-12;
  const auto res = simulate(c, p);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.pulse_count(j), 1u);
  const double total = res.jj_phase[j].back() - res.jj_phase[j].front();
  EXPECT_NEAR(total, 2 * kPi + std::asin(0.7), 0.4);
  double flux = 0.0;
  for (std::size_t k = 1; k < res.time.size(); ++k) {
    flux += res.node_voltage[n][k] * (res.time[k] - res.time[k - 1]);
  }
  // Faraday consistency of the integrator: flux == phi0 * dphi / 2pi.
  EXPECT_NEAR(flux, kPhi0 * total / (2 * kPi), 0.03 * kPhi0);
  // ... and "one pulse ~ one flux quantum" in absolute terms.
  EXPECT_GT(flux, 0.9 * kPhi0);
  EXPECT_LT(flux, 1.3 * kPhi0);
}

TEST(JjSim, JtlPropagatesOnePulsePerStage) {
  Jtl jtl = make_jtl(3);
  jtl.circuit.add_pulse(jtl.input_node, 10e-12, 1.6e-4, 2e-12);
  TransientParams p;
  p.t_end = 80e-12;
  p.dt = 0.02e-12;
  const auto res = simulate(jtl.circuit, p);
  ASSERT_TRUE(res.converged);
  for (const int j : jtl.stage_junctions) {
    EXPECT_EQ(res.pulse_count(j), 1u) << "junction " << j;
  }
  // Causality: pulses arrive in stage order.
  for (std::size_t s = 1; s < jtl.stage_junctions.size(); ++s) {
    EXPECT_GT(res.jj_pulses[jtl.stage_junctions[s]][0],
              res.jj_pulses[jtl.stage_junctions[s - 1]][0]);
  }
}

TEST(JjSim, JtlQuietWithoutInput) {
  Jtl jtl = make_jtl(3);
  TransientParams p;
  p.t_end = 60e-12;
  const auto res = simulate(jtl.circuit, p);
  ASSERT_TRUE(res.converged);
  for (const int j : jtl.stage_junctions) {
    EXPECT_EQ(res.pulse_count(j), 0u);
  }
}

TEST(JjSim, JtlTransmitsAPulseTrain) {
  Jtl jtl = make_jtl(2);
  jtl.circuit.add_pulse(jtl.input_node, 10e-12, 1.6e-4, 2e-12);
  jtl.circuit.add_pulse(jtl.input_node, 40e-12, 1.6e-4, 2e-12);
  jtl.circuit.add_pulse(jtl.input_node, 70e-12, 1.6e-4, 2e-12);
  TransientParams p;
  p.t_end = 110e-12;
  p.dt = 0.02e-12;
  const auto res = simulate(jtl.circuit, p);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.pulse_count(jtl.stage_junctions.back()), 3u);
}

TEST(JjSim, StorageLoopHoldsAFluxQuantum) {
  // Two junctions around a quantizing inductor: an input pulse writes one
  // flux quantum into the loop (RS-flip-flop storage principle, Fig. 1a).
  Circuit c;
  const int in = c.add_node();
  const int mid = c.add_node();
  JjParams jp;
  const int jwrite = c.add_jj(in, 0, jp);
  (void)jwrite;
  const double lq = 20e-12;  // beta_L ~ 6: strongly bistable loop
  const int loop_l = c.add_inductor(in, mid, lq);
  (void)loop_l;
  const int jhold = c.add_jj(mid, 0, jp);
  c.add_dc_bias(in, 0.3 * jp.ic);
  c.add_pulse(in, 15e-12, 1.5 * jp.ic, 2e-12);
  TransientParams p;
  p.t_end = 80e-12;
  p.dt = 0.02e-12;
  const auto res = simulate(c, p);
  ASSERT_TRUE(res.converged);
  // The write junction (or loop) advances by 2*pi while the hold junction
  // stays put: persistent current = stored flux.
  const double phase_diff =
      std::fabs(res.jj_phase[jwrite].back() - res.jj_phase[jhold].back());
  EXPECT_GT(phase_diff, kPi);  // a quantum sits in the loop
  EXPECT_EQ(res.pulse_count(jhold), 0u);
}

TEST(JjSim, BuilderValidation) {
  Circuit c;
  EXPECT_THROW(c.add_resistor(0, 5, 10.0), std::invalid_argument);
  EXPECT_THROW(c.add_resistor(0, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(c.add_inductor(0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor(0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor(0, 0, -1e-15), std::invalid_argument);
  EXPECT_THROW(make_jtl(0), std::invalid_argument);
}

TEST(JjSim, TransientParamValidation) {
  // Degenerate step parameters previously went unchecked: dt <= 0 looped
  // forever or not at all, and record_every == 0 divided by zero.
  Circuit c;
  const int n = c.add_node();
  c.add_resistor(n, 0, 1.0);
  TransientParams p;
  p.dt = 0.0;
  EXPECT_THROW(simulate(c, p), std::invalid_argument);
  p.dt = -1e-12;
  EXPECT_THROW(simulate(c, p), std::invalid_argument);
  p.dt = 1e-12;
  p.t_end = 0.5e-12;  // shorter than one step
  EXPECT_THROW(simulate(c, p), std::invalid_argument);
  p.t_end = 10e-12;
  p.record_every = 0;
  EXPECT_THROW(simulate(c, p), std::invalid_argument);
  p.record_every = 4;
  EXPECT_TRUE(simulate(c, p).converged);  // thinning still works
}

}  // namespace
}  // namespace jj
}  // namespace t1sfq
