#include "benchmarks/arith.hpp"

#include <gtest/gtest.h>

#include <random>

#include "network/simulation.hpp"

namespace t1sfq {
namespace {

/// Evaluates a network on packed integer operands (one word per PI prefix).
std::vector<bool> run(const Network& net, const std::vector<bool>& pis) {
  return simulate(net, pis);
}

std::vector<bool> concat(std::initializer_list<std::vector<bool>> parts) {
  std::vector<bool> out;
  for (const auto& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

TEST(Arith, WordHelpersRoundTrip) {
  EXPECT_EQ(word_to_uint(uint_to_word(0xdeadbeef, 32)), 0xdeadbeefu);
  EXPECT_EQ(word_to_uint(uint_to_word(5, 3)), 5u);
  EXPECT_EQ(uint_to_word(6, 3), (std::vector<bool>{false, true, true}));
}

TEST(Arith, HalfAdderTruthTable) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const SumCarry ha = half_adder(net, a, b);
  net.add_po(ha.sum);
  net.add_po(ha.carry);
  for (unsigned m = 0; m < 4; ++m) {
    const auto out = run(net, {(m & 1) != 0, (m & 2) != 0});
    const unsigned total = (m & 1) + ((m >> 1) & 1);
    EXPECT_EQ(out[0], (total & 1) != 0);
    EXPECT_EQ(out[1], total >= 2);
  }
}

TEST(Arith, RippleCarryAdderRandom) {
  const unsigned bits = 16;
  Network net;
  const Word a = add_pi_word(net, bits, "a");
  const Word b = add_pi_word(net, bits, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  std::mt19937_64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const uint64_t x = rng() & 0xffff, y = rng() & 0xffff;
    const auto out = run(net, concat({uint_to_word(x, bits), uint_to_word(y, bits)}));
    EXPECT_EQ(word_to_uint(out), x + y);
  }
}

TEST(Arith, AddUnsignedMixedWidths) {
  Network net;
  const Word a = add_pi_word(net, 8, "a");
  const Word b = add_pi_word(net, 4, "b");
  add_po_word(net, add_unsigned(net, a, b), "s");
  const auto out = run(net, concat({uint_to_word(200, 8), uint_to_word(9, 4)}));
  EXPECT_EQ(word_to_uint(out), 209u);
}

TEST(Arith, SubtractUnsignedWithBorrow) {
  Network net;
  const Word a = add_pi_word(net, 8, "a");
  const Word b = add_pi_word(net, 8, "b");
  add_po_word(net, subtract_unsigned(net, a, b), "d");
  // 100 - 58 = 42, no borrow.
  auto out = run(net, concat({uint_to_word(100, 8), uint_to_word(58, 8)}));
  EXPECT_EQ(word_to_uint({out.begin(), out.end() - 1}), 42u);
  EXPECT_FALSE(out.back());
  // 58 - 100 wraps and borrows.
  out = run(net, concat({uint_to_word(58, 8), uint_to_word(100, 8)}));
  EXPECT_TRUE(out.back());
}

TEST(Arith, ArrayMultiplierRandom) {
  const unsigned bits = 8;
  Network net;
  const Word a = add_pi_word(net, bits, "a");
  const Word b = add_pi_word(net, bits, "b");
  add_po_word(net, array_multiplier(net, a, b), "p");
  std::mt19937_64 rng(2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t x = rng() & 0xff, y = rng() & 0xff;
    const auto out = run(net, concat({uint_to_word(x, bits), uint_to_word(y, bits)}));
    EXPECT_EQ(word_to_uint(out), x * y);
  }
}

TEST(Arith, ConstantMultiply) {
  Network net;
  const Word a = add_pi_word(net, 8, "a");
  add_po_word(net, constant_multiply(net, a, 37), "p");
  for (uint64_t x : {0ull, 1ull, 7ull, 255ull}) {
    const auto out = run(net, uint_to_word(x, 8));
    EXPECT_EQ(word_to_uint(out), 37 * x);
  }
}

TEST(Arith, ConstantMultiplyByZeroAndPowerOfTwo) {
  Network net;
  const Word a = add_pi_word(net, 6, "a");
  add_po_word(net, constant_multiply(net, a, 0), "z");
  Network net2;
  const Word a2 = add_pi_word(net2, 6, "a");
  add_po_word(net2, constant_multiply(net2, a2, 8), "p");
  EXPECT_EQ(word_to_uint(run(net, uint_to_word(63, 6))), 0u);
  EXPECT_EQ(word_to_uint(run(net2, uint_to_word(5, 6))), 40u);
}

TEST(Arith, PopcountAllWidths) {
  for (unsigned width : {1u, 2u, 3u, 7u, 16u, 33u}) {
    Network net;
    const Word in = add_pi_word(net, width, "v");
    add_po_word(net, popcount(net, in), "c");
    std::mt19937_64 rng(width);
    for (int i = 0; i < 50; ++i) {
      std::vector<bool> bits(width);
      unsigned expect = 0;
      for (auto&& b : bits) {
        b = rng() & 1;
        expect += b;
      }
      EXPECT_EQ(word_to_uint(run(net, bits)), expect) << "width " << width;
    }
  }
}

TEST(Arith, Comparators) {
  Network net;
  const Word a = add_pi_word(net, 6, "a");
  const Word b = add_pi_word(net, 6, "b");
  net.add_po(equals(net, a, b), "eq");
  net.add_po(greater_than(net, a, b), "gt");
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t x = rng() & 63, y = rng() & 63;
    const auto out = run(net, concat({uint_to_word(x, 6), uint_to_word(y, 6)}));
    EXPECT_EQ(out[0], x == y);
    EXPECT_EQ(out[1], x > y);
  }
}

TEST(Arith, GreaterEqualConst) {
  for (uint64_t threshold : {0ull, 1ull, 17ull, 31ull, 32ull, 100ull}) {
    Network net;
    const Word a = add_pi_word(net, 5, "a");
    net.add_po(greater_equal_const(net, a, threshold), "ge");
    for (uint64_t x = 0; x < 32; ++x) {
      const auto out = run(net, uint_to_word(x, 5));
      EXPECT_EQ(out[0], x >= threshold) << "x=" << x << " t=" << threshold;
    }
  }
}

TEST(Arith, ParityMatchesXorFold) {
  Network net;
  const Word a = add_pi_word(net, 9, "a");
  net.add_po(parity(net, a), "p");
  std::mt19937_64 rng(4);
  for (int i = 0; i < 100; ++i) {
    std::vector<bool> bits(9);
    bool expect = false;
    for (auto&& b : bits) {
      b = rng() & 1;
      expect ^= b;
    }
    EXPECT_EQ(run(net, bits)[0], expect);
  }
}

TEST(Arith, MuxSelects) {
  Network net;
  const NodeId s = net.add_pi();
  const NodeId t = net.add_pi();
  const NodeId e = net.add_pi();
  net.add_po(mux(net, s, t, e));
  EXPECT_TRUE(run(net, {true, true, false})[0]);
  EXPECT_FALSE(run(net, {true, false, true})[0]);
  EXPECT_TRUE(run(net, {false, false, true})[0]);
  EXPECT_FALSE(run(net, {false, true, false})[0]);
}

TEST(Arith, ShiftAndSlice) {
  Network net;
  const Word a = add_pi_word(net, 4, "a");
  add_po_word(net, shift_left(net, a, 3), "s");
  const auto out = run(net, uint_to_word(0b1011, 4));
  EXPECT_EQ(word_to_uint(out), 0b1011000u);

  Network net2;
  const Word b = add_pi_word(net2, 8, "b");
  add_po_word(net2, slice(net2, b, 2, 6), "x");
  const auto out2 = run(net2, uint_to_word(0b10110100, 8));
  EXPECT_EQ(word_to_uint(out2), 0b1101u);
}

TEST(Arith, WidthMismatchThrows) {
  Network net;
  const Word a = add_pi_word(net, 4, "a");
  const Word b = add_pi_word(net, 5, "b");
  EXPECT_THROW(ripple_carry_adder(net, a, b, net.get_const0()), std::invalid_argument);
}

}  // namespace
}  // namespace t1sfq
