#include "sfq/cell_library.hpp"

#include <gtest/gtest.h>

namespace t1sfq {
namespace {

TEST(CellLibrary, InterfaceCellsAreFree) {
  const CellLibrary lib;
  EXPECT_EQ(lib.jj_cost(GateType::Pi), 0u);
  EXPECT_EQ(lib.jj_cost(GateType::Const0), 0u);
  EXPECT_EQ(lib.jj_cost(GateType::Const1), 0u);
}

TEST(CellLibrary, T1AnchorsMatchThePaper) {
  const CellLibrary lib;
  // "the T1-FF can realize a full adder with only 29 JJs" (paper §I-A).
  EXPECT_EQ(lib.jj_cost(GateType::T1), 29u);
  // Plain ports are taps; inverted ports pay one inverter.
  EXPECT_EQ(lib.jj_cost(GateType::T1Port, T1PortFn::Sum), 0u);
  EXPECT_EQ(lib.jj_cost(GateType::T1Port, T1PortFn::Carry), 0u);
  EXPECT_EQ(lib.jj_cost(GateType::T1Port, T1PortFn::Or), 0u);
  EXPECT_EQ(lib.jj_cost(GateType::T1Port, T1PortFn::CarryN), lib.jj_t1_inverter);
  EXPECT_EQ(lib.jj_cost(GateType::T1Port, T1PortFn::OrN), lib.jj_t1_inverter);
}

TEST(CellLibrary, T1FullAdderIsWellUnderHalfTheConventionalArea) {
  // The paper's motivation: the T1 FA uses ~40% of the JJs of a conventional
  // realization (2 XOR + 2 AND + OR, plus input splitters).
  const CellLibrary lib;
  const unsigned conventional = 2 * lib.jj_xor2 + 2 * lib.jj_and2 + lib.jj_or2 +
                                4 * lib.jj_splitter;  // a, b, cin, a^b fan out
  EXPECT_LT(lib.jj_cost(GateType::T1), conventional);
  EXPECT_LT(static_cast<double>(lib.jj_cost(GateType::T1)) / conventional, 0.6);
}

TEST(CellLibrary, RawGateArea) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g = net.add_and(a, b);
  net.add_po(net.add_not(g));
  const CellLibrary lib;
  EXPECT_EQ(raw_gate_area(net, lib), lib.jj_and2 + lib.jj_not);
}

TEST(CellLibrary, RawGateAreaSkipsDeadNodes) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  (void)net.add_and(a, b);  // dangling
  net.add_po(net.add_or(a, b));
  net.sweep_dangling();
  const CellLibrary lib;
  EXPECT_EQ(raw_gate_area(net, lib), lib.jj_or2);
}

TEST(CellLibrary, CustomLibraryPropagates) {
  CellLibrary lib;
  lib.jj_and2 = 99;
  EXPECT_EQ(lib.jj_cost(GateType::And2), 99u);
}

}  // namespace
}  // namespace t1sfq
