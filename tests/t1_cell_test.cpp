#include "core/t1_cell.hpp"

#include <gtest/gtest.h>

namespace t1sfq {
namespace {

TEST(T1Cell, ClassifiesTheFivePortFunctions) {
  EXPECT_EQ(classify_t1_function(tt3::xor3()), T1PortFn::Sum);
  EXPECT_EQ(classify_t1_function(tt3::maj3()), T1PortFn::Carry);
  EXPECT_EQ(classify_t1_function(tt3::or3()), T1PortFn::Or);
  EXPECT_EQ(classify_t1_function(tt3::minority3()), T1PortFn::CarryN);
  EXPECT_EQ(classify_t1_function(tt3::nor3()), T1PortFn::OrN);
}

TEST(T1Cell, RejectsOtherFunctions) {
  EXPECT_FALSE(classify_t1_function(tt3::and3()).has_value());
  EXPECT_FALSE(classify_t1_function(tt3::xnor3()).has_value());  // S has no inverter port
  EXPECT_FALSE(classify_t1_function(TruthTable::from_hex(3, "d8")).has_value());  // ite
  EXPECT_FALSE(classify_t1_function(TruthTable::constant(3, true)).has_value());
}

TEST(T1Cell, RejectsDegenerateSupport) {
  // xor2 extended to 3 vars: a don't-care leaf would still pulse the loop.
  const auto xor2on3 = TruthTable::nth_var(3, 0) ^ TruthTable::nth_var(3, 1);
  EXPECT_FALSE(classify_t1_function(xor2on3).has_value());
  EXPECT_FALSE(classify_t1_function(TruthTable::nth_var(3, 2)).has_value());
}

TEST(T1Cell, RejectsWrongArity) {
  EXPECT_FALSE(classify_t1_function(TruthTable::nth_var(2, 0)).has_value());
  const auto xor4 = TruthTable::nth_var(4, 0) ^ TruthTable::nth_var(4, 1) ^
                    TruthTable::nth_var(4, 2) ^ TruthTable::nth_var(4, 3);
  EXPECT_FALSE(classify_t1_function(xor4).has_value());
}

TEST(T1Cell, AreaOfFullAdderConfiguration) {
  const CellLibrary lib;
  // S + C: the paper's 29 JJ full adder.
  EXPECT_EQ(t1_area(lib, {T1PortFn::Sum, T1PortFn::Carry}), 29u);
}

TEST(T1Cell, InvertedPortsPayInverters) {
  const CellLibrary lib;
  EXPECT_EQ(t1_area(lib, {T1PortFn::Sum, T1PortFn::CarryN}), 29u + lib.jj_t1_inverter);
  EXPECT_EQ(t1_area(lib, {T1PortFn::CarryN, T1PortFn::OrN}), 29u + 2 * lib.jj_t1_inverter);
}

TEST(T1Cell, DuplicatePortsCountedOnce) {
  const CellLibrary lib;
  EXPECT_EQ(t1_area(lib, {T1PortFn::Sum, T1PortFn::Sum, T1PortFn::Carry}), 29u);
  EXPECT_EQ(t1_area(lib, {T1PortFn::OrN, T1PortFn::OrN}), 29u + lib.jj_t1_inverter);
}

}  // namespace
}  // namespace t1sfq
