#include "core/t1_detection.hpp"

#include <gtest/gtest.h>

#include "benchmarks/arith.hpp"
#include "core/phase_assignment.hpp"
#include "cost/cost_model.hpp"
#include "network/equivalence.hpp"
#include "network/simulation.hpp"

namespace t1sfq {
namespace {

Network full_adder_net() {
  Network net("fa");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("cin");
  const SumCarry fa = full_adder(net, a, b, c);
  net.add_po(fa.sum, "sum");
  net.add_po(fa.carry, "cout");
  return net;
}

TEST(T1Detection, FullAdderBecomesOneT1) {
  Network net = full_adder_net();
  const Network golden = net;
  const CellLibrary lib;
  const auto stats = detect_and_replace_t1(net, lib);
  EXPECT_EQ(stats.found, 1u);
  EXPECT_EQ(stats.used, 1u);
  EXPECT_GT(stats.estimated_gain, 0);
  net = net.cleanup();
  EXPECT_EQ(net.count_of(GateType::T1), 1u);
  // The whole 5-gate cone is gone.
  EXPECT_EQ(net.count_of(GateType::Xor2), 0u);
  EXPECT_EQ(net.count_of(GateType::And2), 0u);
  EXPECT_EQ(net.count_of(GateType::Or2), 0u);
  EXPECT_EQ(check_equivalence_sat(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(T1Detection, ReplacementReducesRawArea) {
  Network net = full_adder_net();
  const CellLibrary lib;
  const uint64_t before = raw_gate_area(net, lib);
  detect_and_replace_t1(net, lib);
  net = net.cleanup();
  EXPECT_LT(raw_gate_area(net, lib), before);
}

TEST(T1Detection, RippleCarryChainFullyConverted) {
  const unsigned bits = 8;
  Network net("rca");
  const Word a = add_pi_word(net, bits, "a");
  const Word b = add_pi_word(net, bits, "b");
  const NodeId cin = net.add_pi("cin");
  add_po_word(net, ripple_carry_adder(net, a, b, cin), "s");
  const Network golden = net;
  const auto stats = detect_and_replace_t1(net, CellLibrary{});
  EXPECT_EQ(stats.used, bits);  // one T1 per full adder
  net = net.cleanup();
  EXPECT_EQ(net.count_of(GateType::T1), bits);
  EXPECT_EQ(check_equivalence_sat(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(T1Detection, SingleXor3AloneIsNotAGroup) {
  // A lone XOR3 cone (no second cut on the same leaves) does not meet the
  // paper's 2 <= n condition.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  net.add_po(net.add_xor(net.add_xor(a, b), c));
  const auto stats = detect_and_replace_t1(net, CellLibrary{});
  EXPECT_EQ(stats.found, 0u);
  EXPECT_EQ(stats.used, 0u);
  EXPECT_EQ(net.count_of(GateType::T1), 0u);
}

TEST(T1Detection, MinCutsOneAllowsSingletons) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  net.add_po(net.add_xor(net.add_xor(a, b), c));
  T1DetectionParams p;
  p.min_cuts_per_group = 1;
  p.require_positive_gain = false;
  const auto stats = detect_and_replace_t1(net, CellLibrary{}, p);
  EXPECT_EQ(stats.used, 1u);
  EXPECT_EQ(net.count_of(GateType::T1), 1u);
}

TEST(T1Detection, NegativeGainRejected) {
  // With an absurdly expensive T1 cell nothing should be replaced.
  Network net = full_adder_net();
  CellLibrary lib;
  lib.jj_t1 = 10000;
  const auto stats = detect_and_replace_t1(net, lib);
  EXPECT_EQ(stats.used, 0u);
  EXPECT_EQ(net.count_of(GateType::T1), 0u);
}

TEST(T1Detection, InvertedOutputsUseStarPorts) {
  // NOT(maj) and NOT(or) over shared leaves: C* and Q* via inverters.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId m = net.add_maj(a, b, c);
  const NodeId o = net.add_or(net.add_or(a, b), c);
  net.add_po(net.add_not(m), "nm");
  net.add_po(net.add_not(o), "no");
  const Network golden = net;
  T1DetectionParams p;
  p.require_positive_gain = false;
  detect_and_replace_t1(net, CellLibrary{}, p);
  net = net.cleanup();
  ASSERT_EQ(net.count_of(GateType::T1), 1u);
  EXPECT_EQ(check_equivalence_sat(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(T1Detection, SharedLogicOutsideConeSurvives) {
  // The xor(a,b) node also feeds an unrelated output: it must not be swept.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId axb = net.add_xor(a, b);
  const NodeId sum = net.add_xor(axb, c);
  const NodeId carry = net.add_or(net.add_and(a, b), net.add_and(axb, c));
  net.add_po(sum, "s");
  net.add_po(carry, "co");
  net.add_po(axb, "extra");  // external use
  const Network golden = net;
  detect_and_replace_t1(net, CellLibrary{});
  EXPECT_EQ(check_equivalence_sat(net, golden).result, EquivalenceResult::Equivalent);
  // axb must still exist to drive the extra PO.
  bool axb_alive = false;
  for (NodeId id = 0; id < net.size(); ++id) {
    if (!net.is_dead(id) && net.node(id).type == GateType::Xor2) {
      axb_alive = true;
    }
  }
  EXPECT_TRUE(axb_alive);
}

TEST(T1Detection, OverlappingCandidatesResolvedGreedily) {
  // Two full adders sharing an input: both convert (disjoint cones).
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId d = net.add_pi();
  const SumCarry fa1 = full_adder(net, a, b, c);
  const SumCarry fa2 = full_adder(net, b, c, d);
  net.add_po(fa1.sum);
  net.add_po(fa1.carry);
  net.add_po(fa2.sum);
  net.add_po(fa2.carry);
  const Network golden = net;
  const auto stats = detect_and_replace_t1(net, CellLibrary{});
  EXPECT_EQ(stats.used, 2u);
  EXPECT_EQ(check_equivalence_sat(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(T1Detection, MultiplierConvertsManyAdders) {
  Network net = [] {
    Network n("mult");
    const Word a = add_pi_word(n, 6, "a");
    const Word b = add_pi_word(n, 6, "b");
    add_po_word(n, array_multiplier(n, a, b), "p");
    return n;
  }();
  const Network golden = net;
  const auto stats = detect_and_replace_t1(net, CellLibrary{});
  EXPECT_GT(stats.used, 10u);
  EXPECT_GE(stats.found, stats.used);
  net = net.cleanup();
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(T1Detection, IdempotentOnConvertedNetwork) {
  Network net = full_adder_net();
  detect_and_replace_t1(net, CellLibrary{});
  net = net.cleanup();
  const std::size_t t1s = net.count_of(GateType::T1);
  const auto stats2 = detect_and_replace_t1(net, CellLibrary{});
  EXPECT_EQ(stats2.used, 0u);  // T1 regions are cut barriers
  EXPECT_EQ(net.count_of(GateType::T1), t1s);
}

TEST(T1Detection, GuardProbeThresholdSwitchesToEnvelopeAndStaysShallow) {
  // Above `guard_probe_max_gates` the schedule-aware guard skips the measured
  // ASAP-only counterfactual run and anchors its latency envelope at the
  // maintained input latency instead. Forcing the threshold to 1 exercises
  // that envelope path on a test-scale network; the contract is soundness
  // plus the no-depth-regression guarantee relative to the *input*.
  const unsigned bits = 8;
  Network golden("rca");
  const Word a = add_pi_word(golden, bits, "a");
  const Word b = add_pi_word(golden, bits, "b");
  const NodeId cin = golden.add_pi("cin");
  add_po_word(golden, ripple_carry_adder(golden, a, b, cin), "s");

  const MultiphaseConfig clk{4};
  const CostModel model(CellLibrary{}, AreaConfig{}, clk);
  PhaseAssignmentParams pp;
  pp.clk = clk;
  const Stage input_sink = assign_phases(golden, pp).output_stage;

  Network probed = golden;
  T1DetectionParams params;  // defaults: guard on, net far below the threshold
  const auto probe_stats = detect_and_replace_t1(probed, model, params);
  ASSERT_GT(probe_stats.used, 0u);

  Network enveloped = golden;
  params.guard_probe_max_gates = 1;
  const auto env_stats = detect_and_replace_t1(enveloped, model, params);

  // Envelope mode is still the same greedy detection: sound, productive on
  // the ripple chain, and latency-bounded by the input schedule.
  EXPECT_GT(env_stats.used, 0u);
  EXPECT_EQ(check_equivalence_sat(enveloped, golden).result,
            EquivalenceResult::Equivalent);
  const Stage env_sink = assign_phases(enveloped, pp).output_stage;
  EXPECT_LE(clk.cycles(env_sink - 1), clk.cycles(input_sink - 1));

  // Below the threshold the counterfactual probe is measured and the result
  // is unchanged from the historical behavior (same commits, same network).
  EXPECT_EQ(probe_stats.found, env_stats.found);
}

}  // namespace
}  // namespace t1sfq
