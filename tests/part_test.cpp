/// \file part_test.cpp
/// \brief Tests for the partition-parallel optimization engine (src/part/).
///
/// Pins the three claims the engine is built on:
///   * the partition invariants (disjoint cover of the opt gates, boundary
///     identification, and the safety property the journaled merge relies
///     on: no region input sits in the transitive fanout of any member),
///   * determinism: `partition_jobs = N` produces byte-identical final
///     networks and schedules for every N in {1, 2, 8},
///   * soundness: the partitioned result is SAT-equivalent to both the input
///     and the sequential (`partition_jobs = 0`) flow, and never deeper than
///     the input.
/// Plus the `bench::run_jobs` nested-pool reentrancy guard the engine needs
/// to run inside an already-pooled bench suite.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "benchmarks/runner.hpp"
#include "core/phase_assignment.hpp"
#include "network/equivalence.hpp"
#include "opt/pass.hpp"
#include "part/partitioner.hpp"
#include "part/shard_runner.hpp"
#include "random_network_test_util.hpp"

namespace t1sfq {
namespace {

using part::Partition;
using part::PartitionParams;
using part::Region;

/// Byte-level structural identity: same nodes (type, fanins, port, liveness)
/// in the same order, same interface.
void expect_identical(const Network& a, const Network& b) {
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < a.size(); ++id) {
    const Node& na = a.node(id);
    const Node& nb = b.node(id);
    ASSERT_EQ(na.type, nb.type) << "node " << id;
    ASSERT_EQ(na.num_fanins, nb.num_fanins) << "node " << id;
    ASSERT_EQ(na.port, nb.port) << "node " << id;
    ASSERT_EQ(na.dead, nb.dead) << "node " << id;
    for (unsigned i = 0; i < na.num_fanins; ++i) {
      ASSERT_EQ(na.fanin(i), nb.fanin(i)) << "node " << id << " fanin " << i;
    }
  }
  ASSERT_EQ(a.pis(), b.pis());
  ASSERT_EQ(a.pos(), b.pos());
}

/// Transitive fanout of \p seeds (excluding the seeds themselves) over live
/// consumer edges, PO-independent.
std::vector<char> transitive_fanout(const Network& net,
                                    const std::vector<NodeId>& seeds) {
  auto lists = net.fanout_lists();
  std::vector<char> in_tfo(net.size(), 0);
  std::vector<NodeId> queue = seeds;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const NodeId c : lists[queue[head]]) {
      if (!in_tfo[c]) {
        in_tfo[c] = 1;
        queue.push_back(c);
      }
    }
  }
  return in_tfo;
}

void check_partition_invariants(const Network& net, const Partition& p) {
  // Disjoint cover of every live opt gate.
  std::vector<uint32_t> owner(net.size(), Partition::kNoRegion);
  for (std::size_t r = 0; r < p.regions.size(); ++r) {
    ASSERT_FALSE(p.regions[r].members.empty());
    for (const NodeId m : p.regions[r].members) {
      ASSERT_FALSE(net.is_dead(m));
      ASSERT_TRUE(is_opt_gate(net.node(m).type));
      ASSERT_EQ(owner[m], Partition::kNoRegion) << "node in two regions";
      owner[m] = static_cast<uint32_t>(r);
    }
  }
  for (NodeId id = 0; id < net.size(); ++id) {
    ASSERT_EQ(owner[id], p.region_of[id]);
    if (!net.is_dead(id) && is_opt_gate(net.node(id).type)) {
      ASSERT_NE(owner[id], Partition::kNoRegion) << "uncovered opt gate " << id;
    }
  }

  auto fanouts = net.fanout_counts();
  std::vector<char> is_po(net.size(), 0);
  for (const NodeId po : net.pos()) {
    is_po[po] = 1;
  }
  auto lists = net.fanout_lists();

  std::size_t boundary_total = 0;
  for (std::size_t r = 0; r < p.regions.size(); ++r) {
    const Region& region = p.regions[r];

    // Inputs: exactly the external fanins of the members, each exactly once.
    std::set<NodeId> member_set(region.members.begin(), region.members.end());
    std::set<NodeId> expected_inputs;
    for (const NodeId m : region.members) {
      const Node& nd = net.node(m);
      for (unsigned i = 0; i < nd.num_fanins; ++i) {
        if (member_set.count(nd.fanin(i)) == 0) {
          expected_inputs.insert(nd.fanin(i));
        }
      }
    }
    std::set<NodeId> got_inputs(region.inputs.begin(), region.inputs.end());
    ASSERT_EQ(got_inputs.size(), region.inputs.size()) << "duplicate input";
    ASSERT_EQ(got_inputs, expected_inputs) << "region " << r;

    // Outputs: exactly the members with a PO reference or external consumer.
    std::set<NodeId> expected_outputs;
    for (const NodeId m : region.members) {
      bool boundary = is_po[m] != 0;
      for (const NodeId c : lists[m]) {
        boundary = boundary || member_set.count(c) == 0;
      }
      if (boundary) {
        expected_outputs.insert(m);
      }
    }
    std::set<NodeId> got_outputs(region.outputs.begin(), region.outputs.end());
    ASSERT_EQ(got_outputs, expected_outputs) << "region " << r;
    boundary_total += region.outputs.size();

    // The merge-safety invariant: no input in the TFO of any member.
    const auto in_tfo = transitive_fanout(net, region.members);
    for (const NodeId in : region.inputs) {
      ASSERT_FALSE(in_tfo[in])
          << "region " << r << ": input " << in << " in member TFO";
    }
    (void)fanouts;
  }
  ASSERT_EQ(p.boundary_nodes, boundary_total);
}

TEST(Partitioner, ConeOrderIsTopological) {
  for (const uint64_t seed : {7ull, 21ull, 1234ull}) {
    const Network net = testutil::random_network(seed, 12, 600);
    const auto order = part::cone_order(net);
    std::size_t live = 0;
    for (NodeId id = 0; id < net.size(); ++id) {
      live += net.is_dead(id) ? 0 : 1;
    }
    ASSERT_EQ(order.size(), live);
    std::vector<uint32_t> pos(net.size(), ~uint32_t{0});
    for (std::size_t i = 0; i < order.size(); ++i) {
      ASSERT_EQ(pos[order[i]], ~uint32_t{0}) << "duplicate in order";
      pos[order[i]] = static_cast<uint32_t>(i);
    }
    for (const NodeId id : order) {
      const Node& nd = net.node(id);
      for (unsigned i = 0; i < nd.num_fanins; ++i) {
        ASSERT_LT(pos[nd.fanin(i)], pos[id]) << "fanin after fanout";
      }
    }
  }
}

TEST(Partitioner, InvariantsHoldAcrossFamiliesAndCaps) {
  for (const uint64_t seed : {3ull, 99ull}) {
    for (const unsigned plant : {0u, 24u}) {
      const Network net =
          bench::random_network(seed, 16, 800, bench::RandomPoPolicy::AllSinks, plant);
      for (const std::size_t cap : {1ul, 50ul, 200ul, 100000ul}) {
        PartitionParams pp;
        pp.max_region = cap;
        check_partition_invariants(net, part::partition_network(net, pp));
      }
      // Offset slicing (the stitch round's shape).
      PartitionParams pp;
      pp.max_region = 200;
      pp.first_region_cap = 100;
      check_partition_invariants(net, part::partition_network(net, pp));
    }
  }
  // The historical property-test shape keeps unreachable live junk and T1
  // barrier cells in the mix once detection ran; invariants must still hold.
  Network deep = testutil::random_network(5, 10, 500);
  check_partition_invariants(deep, part::partition_network(deep, {}));
}

OptParams part_params(unsigned jobs) {
  OptParams op;
  op.partition_jobs = jobs;
  op.partition_max_region = 300;
  op.partition_min_gates = 0;  // force the engine on test-sized networks
  op.rounds = 2;
  return op;
}

TEST(ShardRunner, DeterministicAcrossJobCountsAndEquivalent) {
  for (const unsigned plant : {0u, 20u}) {
    const Network input =
        bench::random_network(11 + plant, 16, 1500,
                              bench::RandomPoPolicy::AllSinks, plant);

    Network seq = input;
    OptParams seq_op = part_params(0);
    seq_op.partition_jobs = 0;
    optimize(seq, seq_op);

    Network first;
    for (const unsigned jobs : {1u, 2u, 8u}) {
      Network net = input;
      part::PartitionOptStats stats;
      const OptSummary s = part::optimize_partitioned(net, part_params(jobs), &stats);
      EXPECT_GE(stats.regions, 2u);
      EXPECT_GT(stats.boundary_nodes, 0u);
      EXPECT_LE(net.depth(), input.depth());
      EXPECT_GT(s.total_applied, 0u);
      if (jobs == 1) {
        first = net;
        // Soundness against the input and the sequential pipeline.
        EXPECT_EQ(check_equivalence(net, input).result, EquivalenceResult::Equivalent);
        EXPECT_EQ(check_equivalence(net, seq).result, EquivalenceResult::Equivalent);
      } else {
        expect_identical(net, first);
      }
    }

    // Byte-identical schedules too: the scheduler is deterministic, so this
    // follows from network identity — assert it end to end anyway.
    PhaseAssignmentParams pp;
    Network a = input, b = input;
    optimize(a, part_params(1));
    optimize(b, part_params(8));
    const PhaseAssignment pa = assign_phases(a, pp);
    const PhaseAssignment pb = assign_phases(b, pp);
    EXPECT_EQ(pa.stage, pb.stage);
    EXPECT_EQ(pa.output_stage, pb.output_stage);
    EXPECT_EQ(pa.estimated_dffs, pb.estimated_dffs);
  }
}

TEST(ShardRunner, DispatchesThroughOptimizeAndFallsBackWhenSmall) {
  const Network input = bench::random_network(42, 12, 400,
                                              bench::RandomPoPolicy::AllSinks, 0);
  // Below partition_min_gates the partitioned engine must match the
  // sequential pipeline exactly (it falls back to it).
  Network seq = input;
  OptParams op;
  optimize(seq, op);
  Network parted = input;
  op.partition_jobs = 4;  // default partition_min_gates = 4000 > 400 gates
  optimize(parted, op);
  expect_identical(parted, seq);
}

TEST(ShardRunner, SampledShardChecksRun) {
  const Network input =
      bench::random_network(77, 16, 1500, bench::RandomPoPolicy::AllSinks, 24);
  Network net = input;
  OptParams op = part_params(2);
  op.partition_sample_every = 1;  // check every changed shard
  part::PartitionOptStats stats;
  part::optimize_partitioned(net, op, &stats);
  EXPECT_GT(stats.sat_checked_shards, 0u);
  EXPECT_EQ(stats.sat_rejected_shards, 0u);
  EXPECT_EQ(check_equivalence(net, input).result, EquivalenceResult::Equivalent);
}

TEST(RunnerReentrancy, NestedRunJobsSerializesInsteadOfStackingPools) {
  EXPECT_FALSE(bench::in_job_pool());

  std::atomic<int> peak{0};
  std::atomic<int> active{0};
  std::vector<int> inner_order;

  std::vector<bench::Job> outer;
  for (int o = 0; o < 2; ++o) {
    outer.push_back([&, o](std::ostream& log) {
      EXPECT_TRUE(bench::in_job_pool());
      std::vector<bench::Job> inner;
      for (int i = 0; i < 4; ++i) {
        inner.push_back([&, o, i](std::ostream&) {
          const int now = ++active;
          int seen = peak.load();
          while (now > seen && !peak.compare_exchange_weak(seen, now)) {
          }
          // A nested pool would run inner jobs on fresh (unmarked) threads;
          // the guard keeps them on this already-pooled thread.
          EXPECT_TRUE(bench::in_job_pool());
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          --active;
          log << "inner " << o << "." << i << "\n";
        });
      }
      std::ostringstream sink;
      bench::run_jobs(std::move(inner), sink, /*threads=*/8);
      log << "outer " << o << " done\n";
    });
  }
  std::ostringstream log;
  bench::run_jobs(std::move(outer), log, /*threads=*/2);

  // Each outer worker ran its inner batch sequentially on itself, so at most
  // the two outer workers were ever concurrently inside inner jobs.
  EXPECT_LE(peak.load(), 2);
  EXPECT_FALSE(bench::in_job_pool());
  // Ordered flush survives nesting.
  const std::string text = log.str();
  EXPECT_LT(text.find("outer 0 done"), text.find("outer 1 done"));
}

TEST(RunnerReentrancy, TopLevelSequentialCallStillAllowsInnerParallelism) {
  // threads=1 runs jobs on the *calling* thread, which is not a pool worker:
  // inner parallel work (e.g. partition_jobs under `bench --jobs 1`) must
  // still be allowed to spawn its own pool.
  std::vector<bench::Job> outer;
  outer.push_back([&](std::ostream&) {
    EXPECT_FALSE(bench::in_job_pool());
  });
  std::ostringstream sink;
  bench::run_jobs(std::move(outer), sink, /*threads=*/1);
}

}  // namespace
}  // namespace t1sfq
