#include "solver/diff_constraints.hpp"

#include <gtest/gtest.h>

namespace t1sfq {
namespace {

TEST(DiffConstraints, ChainAsap) {
  DifferenceSystem d(3);
  d.add(0, 1, 1);
  d.add(1, 2, 1);
  const auto x = d.solve_asap();
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], 0);
  EXPECT_EQ((*x)[1], 1);
  EXPECT_EQ((*x)[2], 2);
  EXPECT_TRUE(d.satisfied_by(*x));
}

TEST(DiffConstraints, T1StyleOffsets) {
  // sigma_T1 >= max(s1+3, s2+2, s3+1) for fanins at 0: result 3.
  DifferenceSystem d(4);
  d.add(0, 3, 3);
  d.add(1, 3, 2);
  d.add(2, 3, 1);
  const auto x = d.solve_asap();
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[3], 3);
}

TEST(DiffConstraints, PositiveCycleInfeasible) {
  DifferenceSystem d(2);
  d.add(0, 1, 1);
  d.add(1, 0, 1);  // x0 - x1 >= 1 and x1 - x0 >= 1: impossible
  EXPECT_FALSE(d.solve_asap().has_value());
}

TEST(DiffConstraints, ZeroCycleFeasible) {
  DifferenceSystem d(2);
  d.add(0, 1, 0);
  d.add(1, 0, 0);  // x0 == x1 allowed
  const auto x = d.solve_asap();
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], (*x)[1]);
}

TEST(DiffConstraints, AlapPushesTowardDeadline) {
  DifferenceSystem d(3);
  d.add(0, 1, 1);
  d.add(1, 2, 1);
  const auto x = d.solve_alap(10);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[2], 10);
  EXPECT_EQ((*x)[1], 9);
  EXPECT_EQ((*x)[0], 8);
  EXPECT_TRUE(d.satisfied_by(*x));
}

TEST(DiffConstraints, AlapInfeasibleWhenDeadlineTooTight) {
  DifferenceSystem d(3);
  d.add(0, 1, 5);
  d.add(1, 2, 5);
  EXPECT_FALSE(d.solve_alap(7).has_value());
  EXPECT_TRUE(d.solve_alap(10).has_value());
}

TEST(DiffConstraints, AsapIsMinimal) {
  // Every component of ASAP must be <= the corresponding ALAP component.
  DifferenceSystem d(5);
  d.add(0, 2, 2);
  d.add(1, 2, 1);
  d.add(2, 3, 1);
  d.add(2, 4, 3);
  const auto asap = d.solve_asap();
  const auto alap = d.solve_alap(20);
  ASSERT_TRUE(asap && alap);
  for (int i = 0; i < 5; ++i) {
    EXPECT_LE((*asap)[i], (*alap)[i]);
  }
}

TEST(DiffConstraints, SatisfiedByRejectsViolations) {
  DifferenceSystem d(2);
  d.add(0, 1, 3);
  EXPECT_FALSE(d.satisfied_by({0, 2}));
  EXPECT_TRUE(d.satisfied_by({0, 3}));
}

}  // namespace
}  // namespace t1sfq
