#include "sfq/clocking.hpp"

#include <gtest/gtest.h>

namespace t1sfq {
namespace {

TEST(Clocking, StagePhaseEpochRoundTrip) {
  const MultiphaseConfig clk{4};
  // Paper eq. 1: sigma = n*S + phi.
  EXPECT_EQ(clk.stage(0, 0), 0);
  EXPECT_EQ(clk.stage(2, 3), 11);
  EXPECT_EQ(clk.phase_of(11), 3u);
  EXPECT_EQ(clk.epoch_of(11), 2);
}

TEST(Clocking, SinglePhaseDegeneratesToLevels) {
  const MultiphaseConfig clk{1};
  // n = 1: every stage is its own cycle, one DFF per skipped level.
  EXPECT_EQ(clk.dffs_on_edge(0, 1), 0);
  EXPECT_EQ(clk.dffs_on_edge(0, 5), 4);
  EXPECT_EQ(clk.cycles(7), 7);
}

TEST(Clocking, FourPhaseDffWindows) {
  const MultiphaseConfig clk{4};
  // Gaps of up to n stages need no DFF; then one per extra window.
  EXPECT_EQ(clk.dffs_on_edge(0, 1), 0);
  EXPECT_EQ(clk.dffs_on_edge(0, 4), 0);
  EXPECT_EQ(clk.dffs_on_edge(0, 5), 1);
  EXPECT_EQ(clk.dffs_on_edge(0, 8), 1);
  EXPECT_EQ(clk.dffs_on_edge(0, 9), 2);
  EXPECT_EQ(clk.dffs_on_edge(3, 7), 0);
}

TEST(Clocking, NonForwardEdgesCostNothing) {
  const MultiphaseConfig clk{4};
  EXPECT_EQ(clk.dffs_on_edge(5, 5), 0);
  EXPECT_EQ(clk.dffs_on_edge(7, 3), 0);
}

TEST(Clocking, CyclesIsCeilOfStageOverPhases) {
  const MultiphaseConfig clk{4};
  EXPECT_EQ(clk.cycles(0), 0);
  EXPECT_EQ(clk.cycles(1), 1);
  EXPECT_EQ(clk.cycles(4), 1);
  EXPECT_EQ(clk.cycles(5), 2);
  EXPECT_EQ(clk.cycles(128 * 4), 128);
}

class ClockingSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClockingSweep, DffCountMatchesClosedForm) {
  const MultiphaseConfig clk{GetParam()};
  const Stage n = GetParam();
  for (Stage from = 0; from < 10; ++from) {
    for (Stage to = from + 1; to < from + 30; ++to) {
      // Definition: smallest k such that the chain from..to splits into
      // k+1 hops of at most n stages each.
      Stage k = 0;
      while ((k + 1) * n < to - from) {
        ++k;
      }
      EXPECT_EQ(clk.dffs_on_edge(from, to), k) << "n=" << n << " gap=" << (to - from);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Phases, ClockingSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u));

}  // namespace
}  // namespace t1sfq
