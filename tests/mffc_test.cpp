#include "network/mffc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace t1sfq {
namespace {

bool contains(const std::vector<NodeId>& v, NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(Mffc, SingleGateConeIsItself) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g = net.add_and(a, b);
  net.add_po(g);
  const auto cone = mffc(net, g, net.fanout_counts());
  EXPECT_EQ(cone.size(), 1u);
  EXPECT_TRUE(contains(cone, g));
}

TEST(Mffc, ChainIsFullyContained) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g1 = net.add_and(a, b);
  const NodeId g2 = net.add_not(g1);
  const NodeId g3 = net.add_or(g2, b);
  net.add_po(g3);
  const auto cone = mffc(net, g3, net.fanout_counts());
  EXPECT_EQ(cone.size(), 3u);
  EXPECT_TRUE(contains(cone, g1));
  EXPECT_TRUE(contains(cone, g2));
  EXPECT_TRUE(contains(cone, g3));
}

TEST(Mffc, SharedNodeExcluded) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId shared = net.add_and(a, b);
  const NodeId g1 = net.add_not(shared);
  const NodeId g2 = net.add_xor(shared, a);
  net.add_po(g1);
  net.add_po(g2);
  // `shared` has two fanouts, so it is in neither MFFC.
  const auto fo = net.fanout_counts();
  const auto cone1 = mffc(net, g1, fo);
  EXPECT_EQ(cone1.size(), 1u);
  EXPECT_FALSE(contains(cone1, shared));
  const auto cone2 = mffc(net, g2, fo);
  EXPECT_EQ(cone2.size(), 1u);
}

TEST(Mffc, PoReferenceCountsAsFanout) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId inner = net.add_and(a, b);
  const NodeId outer = net.add_not(inner);
  net.add_po(inner);  // inner is also a primary output
  net.add_po(outer);
  const auto cone = mffc(net, outer, net.fanout_counts());
  EXPECT_EQ(cone.size(), 1u);  // inner stays: the PO still needs it
}

TEST(Mffc, LeavesStopTheCone) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g1 = net.add_and(a, b);
  const NodeId g2 = net.add_not(g1);
  net.add_po(g2);
  const auto cone = mffc(net, g2, net.fanout_counts(), {g1});
  EXPECT_EQ(cone.size(), 1u);
  EXPECT_FALSE(contains(cone, g1));
}

TEST(Mffc, PiRootIsEmpty) {
  Network net;
  const NodeId a = net.add_pi();
  net.add_po(a);
  EXPECT_TRUE(mffc(net, a, net.fanout_counts()).empty());
}

TEST(Mffc, FullAdderSumConeExcludesSharedXor) {
  // In the classic FA structure, xor(a,b) feeds both sum and carry, so the
  // sum's MFFC is only the top xor.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId axb = net.add_xor(a, b);
  const NodeId sum = net.add_xor(axb, c);
  const NodeId carry = net.add_or(net.add_and(a, b), net.add_and(axb, c));
  net.add_po(sum);
  net.add_po(carry);
  const auto fo = net.fanout_counts();
  const auto sum_cone = mffc(net, sum, fo);
  EXPECT_EQ(sum_cone.size(), 1u);
  // Carry's cone holds or + two ands (axb is shared with sum).
  const auto carry_cone = mffc(net, carry, fo);
  EXPECT_EQ(carry_cone.size(), 3u);
  EXPECT_FALSE(contains(carry_cone, axb));
}

}  // namespace
}  // namespace t1sfq
