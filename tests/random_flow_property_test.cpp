/// Property-based testing of the whole flow on randomly generated networks:
/// for any random DAG of SFQ cells and any phase count, the flow must emit a
/// functionally equivalent, timing-legal physical netlist whose DFF count
/// matches the scheduler's plan (up to landing-DFF sharing).

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "network/equivalence.hpp"
#include "random_network_test_util.hpp"
#include "sfq/pulse_sim.hpp"

namespace t1sfq {
namespace {

using testutil::random_network;

struct RandomCase {
  uint64_t seed;
  unsigned phases;
  bool use_t1;
};

class RandomFlow : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomFlow, FlowInvariantsHold) {
  const auto [seed, phases, use_t1] = GetParam();
  const Network net = random_network(seed, 6 + seed % 5, 40 + seed % 60);

  FlowParams p;
  p.clk.phases = phases;
  p.use_t1 = use_t1;
  const FlowResult res = run_flow(net, p);

  // 1. Function preserved (complete SAT proof: these are small networks).
  EXPECT_EQ(check_equivalence(res.mapped, net).result, EquivalenceResult::Equivalent)
      << "seed " << seed;

  // 2. Schedule feasible and hazard-free under pulse-accurate simulation.
  EXPECT_TRUE(assignment_feasible(res.mapped, res.assignment.stage,
                                  res.assignment.output_stage, p.clk));
  EXPECT_TRUE(pulse_verify(res.physical.net, res.physical.stage, p.clk, net, 1))
      << "seed " << seed;

  // 3. The physical DFF count never exceeds the scheduler's plan (sharing of
  //    landing DFFs can only reduce it).
  const auto plan = plan_dffs(res.mapped, res.assignment.stage,
                              res.assignment.output_stage, p.clk);
  EXPECT_LE(res.physical.num_dffs, static_cast<std::size_t>(plan.total_dffs()));

  // 4. Every T1 body in the physical netlist obeys eq. 5 (distinct landings).
  for (NodeId id = 0; id < res.physical.net.size(); ++id) {
    const Node& n = res.physical.net.node(id);
    if (n.dead || n.type != GateType::T1) continue;
    const auto& st = res.physical.stage;
    EXPECT_NE(st[n.fanin(0)], st[n.fanin(1)]);
    EXPECT_NE(st[n.fanin(1)], st[n.fanin(2)]);
    EXPECT_NE(st[n.fanin(0)], st[n.fanin(2)]);
  }
}

std::vector<RandomCase> random_cases() {
  std::vector<RandomCase> cases;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    cases.push_back({seed, 4, true});
  }
  for (uint64_t seed = 13; seed <= 18; ++seed) {
    cases.push_back({seed, 1 + static_cast<unsigned>(seed % 7), false});
  }
  for (uint64_t seed = 19; seed <= 24; ++seed) {
    cases.push_back({seed, 5 + static_cast<unsigned>(seed % 3), true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlow, ::testing::ValuesIn(random_cases()));

}  // namespace
}  // namespace t1sfq
