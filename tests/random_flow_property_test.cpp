/// Property-based testing of the whole flow on randomly generated networks:
/// for any random DAG of SFQ cells and any phase count, the flow must emit a
/// functionally equivalent, timing-legal physical netlist whose DFF count
/// matches the scheduler's plan (up to landing-DFF sharing). Every third seed
/// additionally runs the pulse-level physics oracle (verify/physics_check.hpp)
/// end to end, including partition-parallel and schedule-aware-guard
/// optimization pipelines.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "network/equivalence.hpp"
#include "random_network_test_util.hpp"
#include "sfq/pulse_sim.hpp"
#include "verify/physics_check.hpp"

namespace t1sfq {
namespace {

using testutil::random_network;

struct RandomCase {
  uint64_t seed;
  unsigned phases;
  bool use_t1;
  /// >= 2 exercises the partition-parallel optimizer (thresholds forced low
  /// so the small random networks actually partition).
  unsigned partition_jobs = 0;
  /// Forces the schedule-aware guard onto its incremental-anchor path by
  /// disabling the measured ASAP-only probe.
  bool no_guard_probe = false;
};

class RandomFlow : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomFlow, FlowInvariantsHold) {
  const RandomCase& c = GetParam();
  const uint64_t seed = c.seed;
  const Network net = random_network(seed, 6 + seed % 5, 40 + seed % 60);

  FlowParams p;
  p.clk.phases = c.phases;
  p.use_t1 = c.use_t1;
  if (c.partition_jobs >= 2) {
    p.opt.enable = true;
    p.opt.partition_jobs = c.partition_jobs;
    p.opt.partition_min_gates = 1;   // the 40-100 gate networks must partition
    p.opt.partition_max_region = 24;
  }
  if (c.no_guard_probe) {
    p.opt.enable = true;
    p.detection.guard_probe_max_gates = 0;  // incremental-anchor guard path
  }
  const FlowResult res = run_flow(net, p);

  // 1. Function preserved (complete SAT proof: these are small networks).
  EXPECT_EQ(check_equivalence(res.mapped, net).result, EquivalenceResult::Equivalent)
      << "seed " << seed;

  // 2. Schedule feasible and hazard-free under pulse-accurate simulation.
  EXPECT_TRUE(assignment_feasible(res.mapped, res.assignment.stage,
                                  res.assignment.output_stage, p.clk));
  EXPECT_TRUE(pulse_verify(res.physical.net, res.physical.stage, p.clk, net, 1))
      << "seed " << seed;

  // 3. The physical DFF count never exceeds the scheduler's plan (sharing of
  //    landing DFFs can only reduce it).
  const auto plan = plan_dffs(res.mapped, res.assignment.stage,
                              res.assignment.output_stage, p.clk);
  EXPECT_LE(res.physical.num_dffs, static_cast<std::size_t>(plan.total_dffs()));

  // 4. Every T1 body in the physical netlist obeys eq. 5 (distinct landings).
  for (NodeId id = 0; id < res.physical.net.size(); ++id) {
    const Node& n = res.physical.net.node(id);
    if (n.dead || n.type != GateType::T1) continue;
    const auto& st = res.physical.stage;
    EXPECT_NE(st[n.fanin(0)], st[n.fanin(1)]);
    EXPECT_NE(st[n.fanin(1)], st[n.fanin(2)]);
    EXPECT_NE(st[n.fanin(0)], st[n.fanin(2)]);
  }

  // 5. Every third seed: the full physics oracle (directed + hazard + random
  //    vectors, phase-margin scan) — deterministic sampling keeps the suite
  //    fast while every pipeline shape still gets end-to-end coverage.
  if (seed % 3 == 0) {
    verify::PhysicsCheckParams pp;
    pp.random_vectors = 24;
    pp.seed = seed;  // deterministic per case
    pp.max_hazard_t1 = 8;
    const auto report = verify::physics_check(res.physical, p.clk, net, pp);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.summary();
    EXPECT_GT(report.vectors, 0u);
    EXPECT_GE(report.min_margin, 0) << "seed " << seed;
  }
}

std::vector<RandomCase> random_cases() {
  std::vector<RandomCase> cases;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    cases.push_back({seed, 4, true});
  }
  for (uint64_t seed = 13; seed <= 18; ++seed) {
    cases.push_back({seed, 1 + static_cast<unsigned>(seed % 7), false});
  }
  for (uint64_t seed = 19; seed <= 24; ++seed) {
    cases.push_back({seed, 5 + static_cast<unsigned>(seed % 3), true});
  }
  // Partition-parallel optimization (PR 6 path) under the same invariants;
  // seeds divisible by 3 included so the physics oracle covers it too.
  for (uint64_t seed = 25; seed <= 30; ++seed) {
    cases.push_back({seed, 4, true, /*partition_jobs=*/2 + seed % 3});
  }
  // Schedule-aware guard on its incremental-anchor (probe-free) path.
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    cases.push_back({seed, 4, true, /*partition_jobs=*/0, /*no_guard_probe=*/true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlow, ::testing::ValuesIn(random_cases()));

}  // namespace
}  // namespace t1sfq
