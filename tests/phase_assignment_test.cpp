#include "core/phase_assignment.hpp"

#include <gtest/gtest.h>

#include "benchmarks/arith.hpp"
#include "core/t1_detection.hpp"
#include "incr/incremental_view.hpp"

namespace t1sfq {
namespace {

Network chain(unsigned length) {
  Network net;
  NodeId prev = net.add_pi();
  const NodeId other = net.add_pi();
  for (unsigned i = 0; i < length; ++i) {
    prev = i % 2 ? net.add_and(prev, other) : net.add_xor(prev, other);
  }
  net.add_po(prev);
  return net;
}

PhaseAssignmentParams params(unsigned phases, PhaseEngine engine = PhaseEngine::Heuristic) {
  PhaseAssignmentParams p;
  p.clk.phases = phases;
  p.engine = engine;
  return p;
}

TEST(PhaseAssignment, ChainWithinWindowNeedsNoDffs) {
  // A depth-4 chain whose side input feeds every level: with n >= 4 phases
  // every edge fits one clock window; with n = 1 the side input needs a
  // spine covering all but the first level.
  const Network net = chain(4);
  const auto pa4 = assign_phases(net, params(4));
  EXPECT_TRUE(pa4.feasible);
  EXPECT_EQ(pa4.estimated_dffs, 0);
  const auto pa8 = assign_phases(net, params(8));
  EXPECT_EQ(pa8.estimated_dffs, 0);
  const auto pa1 = assign_phases(net, params(1));
  EXPECT_EQ(pa1.estimated_dffs, 3);  // shared spine for the side input
}

TEST(PhaseAssignment, UnbalancedFanoutCostsDffs) {
  // y = and(x1, deep-chain(x1)): the short branch must be padded.
  Network net;
  const NodeId x = net.add_pi();
  const NodeId o = net.add_pi();
  NodeId deep = x;
  for (int i = 0; i < 9; ++i) {
    deep = net.add_xor(deep, o);
  }
  net.add_po(net.add_and(x, deep));
  const auto pa1 = assign_phases(net, params(1));
  // Single phase: the x -> and edge spans 10 levels: 9 DFFs; plus `o` feeding
  // all chain stages needs its own spine of 8.
  EXPECT_EQ(pa1.estimated_dffs, 9 + 8);
  const auto pa4 = assign_phases(net, params(4));
  // Four phases: ceil(10/4)-1 = 2 on the x edge, ceil(9/4)-1 = 2 for o.
  EXPECT_EQ(pa4.estimated_dffs, 2 + 2);
}

TEST(PhaseAssignment, FeasibilityCheckerCatchesViolations) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g = net.add_and(a, b);
  net.add_po(g);
  std::vector<Stage> stage(net.size(), 0);
  const MultiphaseConfig clk{4};
  EXPECT_FALSE(assignment_feasible(net, stage, 1, clk));  // gate at stage 0
  stage[g] = 1;
  EXPECT_TRUE(assignment_feasible(net, stage, 2, clk));
  EXPECT_FALSE(assignment_feasible(net, stage, 1, clk));  // sink too early
}

TEST(PhaseAssignment, T1ConstraintEquation3) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId g = net.add_and(a, b);       // stage >= 1
  const NodeId t1 = net.add_t1(g, b, c);
  net.add_po(net.add_t1_port(t1, T1PortFn::Sum));
  const auto pa = assign_phases(net, params(4));
  ASSERT_TRUE(pa.feasible);
  // Fanins at stages {1, 0, 0}: sigma_T1 >= max(0+3, 0+2, 1+1)... sorted
  // ascending (0,0,1) -> max(0+3, 0+2, 1+1) = 3? No: eq. 3 assigns the
  // largest offset to the earliest fanin: max(0+3, 0+2, 1+1) = 3. But two
  // fanins tie at stage 0 and slots must be distinct: (0+3, 0+2, 1+1) = 3.
  EXPECT_GE(pa.stage[t1], 3);
  EXPECT_TRUE(assignment_feasible(net, pa.stage, pa.output_stage, MultiphaseConfig{4}));
}

TEST(PhaseAssignment, T1WithFewerThanFourPhasesInfeasible) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId t1 = net.add_t1(a, b, c);
  net.add_po(net.add_t1_port(t1, T1PortFn::Sum));
  const auto pa = assign_phases(net, params(3));
  EXPECT_FALSE(pa.feasible);
}

TEST(PhaseAssignment, PlanCountsT1LandingDffs) {
  // T1 fed directly by three PIs (stage 0): landing slots sigma-1..3 all need
  // one DFF each (sigma = 3 -> stages 0,1,2; the slot at stage 0 is direct).
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId t1 = net.add_t1(a, b, c);
  net.add_po(net.add_t1_port(t1, T1PortFn::Sum));
  const auto pa = assign_phases(net, params(4));
  ASSERT_TRUE(pa.feasible);
  EXPECT_EQ(pa.stage[t1], 3);
  // Slots land at stages 0,1,2 from PIs at stage 0: two DFF chains (stages 1
  // and 2), the third input connects directly.
  EXPECT_EQ(pa.estimated_dffs, 2);
}

TEST(PhaseAssignment, HeuristicImprovesOnAsap) {
  // Two parallel chains of different depth joined at the top: ASAP puts the
  // short chain early and pays a long balance chain; sliding it later removes
  // DFFs entirely when the window allows.
  Network net;
  const NodeId x = net.add_pi();
  const NodeId o = net.add_pi();
  NodeId deep = x;
  for (int i = 0; i < 6; ++i) {
    deep = net.add_xor(deep, o);
  }
  const NodeId shallow = net.add_not(x);
  net.add_po(net.add_and(deep, shallow));
  const auto pa = assign_phases(net, params(8));
  // With 8 phases everything fits in one window; optimal is zero DFFs.
  EXPECT_EQ(pa.estimated_dffs, 0);
}

TEST(PhaseAssignment, MilpMatchesHeuristicOnSmallAdder) {
  Network net;
  const Word a = add_pi_word(net, 3, "a");
  const Word b = add_pi_word(net, 3, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  const auto h = assign_phases(net, params(4, PhaseEngine::Heuristic));
  const auto m = assign_phases(net, params(4, PhaseEngine::ExactMilp));
  ASSERT_TRUE(h.feasible);
  ASSERT_TRUE(m.feasible);
  // The exact engine can never be worse under the shared cost model.
  EXPECT_LE(m.estimated_dffs, h.estimated_dffs);
  EXPECT_TRUE(assignment_feasible(net, m.stage, m.output_stage, MultiphaseConfig{4}));
}

TEST(PhaseAssignment, MilpHandlesT1Slots) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const SumCarry fa = full_adder(net, a, b, c);
  net.add_po(fa.sum);
  net.add_po(fa.carry);
  detect_and_replace_t1(net, CellLibrary{});
  net = net.cleanup();
  ASSERT_EQ(net.count_of(GateType::T1), 1u);
  const auto m = assign_phases(net, params(4, PhaseEngine::ExactMilp));
  ASSERT_TRUE(m.feasible);
  EXPECT_TRUE(assignment_feasible(net, m.stage, m.output_stage, MultiphaseConfig{4}));
}

TEST(PhaseAssignment, PlanMatchesManualCountOnFanoutTree) {
  // One driver, consumers at stages 2, 6, 11 with n = 4: the shared spine
  // needs ceil(11/4)-1 = 2 DFFs; consumers at 2 and 6 tap it.
  Network net;
  const NodeId x = net.add_pi();
  const NodeId o = net.add_pi();
  const NodeId c1 = net.add_and(x, o);
  const NodeId c2 = net.add_or(x, o);
  const NodeId c3 = net.add_xor(x, o);
  net.add_po(c1);
  net.add_po(c2);
  net.add_po(c3);
  std::vector<Stage> stage(net.size(), 0);
  stage[c1] = 2;
  stage[c2] = 6;
  stage[c3] = 11;
  const MultiphaseConfig clk{4};
  const auto plan = plan_dffs(net, stage, 12, clk);
  EXPECT_EQ(plan.spine_len[x], 2);
  EXPECT_EQ(plan.spine_len[o], 2);
  EXPECT_EQ(plan.dedicated_landings, 0);
}

TEST(PhaseAssignment, ResolveProducerFollowsPorts) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId t1 = net.add_t1(a, b, c);
  const NodeId port = net.add_t1_port(t1, T1PortFn::Carry);
  net.add_po(port);
  EXPECT_EQ(resolve_producer(net, port), t1);
  EXPECT_EQ(resolve_producer(net, a), a);
}

TEST(PhaseAssignment, OutputStageBalancesAllPos) {
  Network net;
  const NodeId x = net.add_pi();
  const NodeId o = net.add_pi();
  net.add_po(net.add_and(x, o));                          // depth 1
  net.add_po(net.add_xor(net.add_or(x, o), x));           // depth 2
  const auto pa = assign_phases(net, params(4));
  EXPECT_GE(pa.output_stage, 3);
  EXPECT_TRUE(assignment_feasible(net, pa.stage, pa.output_stage, MultiphaseConfig{4}));
}

class PhaseSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PhaseSweep, MorePhasesNeverIncreaseDffs) {
  Network net;
  const Word a = add_pi_word(net, 6, "a");
  const Word b = add_pi_word(net, 6, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  const unsigned n = GetParam();
  const auto low = assign_phases(net, params(n));
  const auto high = assign_phases(net, params(2 * n));
  EXPECT_LE(high.estimated_dffs, low.estimated_dffs) << n << " vs " << 2 * n;
}

INSTANTIATE_TEST_SUITE_P(Phases, PhaseSweep, ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Incremental (slack-seeded, dirty-worklist) scheduler vs legacy full sweep
// ---------------------------------------------------------------------------

/// The incremental scheduler's contract is *identity*, not approximation: it
/// may only skip evaluations that provably reproduce the node's current
/// stage, so the full assignment — every stage, the sink, the DFF estimate —
/// must be bit-identical to the legacy full sweep. Exercised on T1-rich
/// networks (ripple adders fuse into port-chained T1 cells, the worst case
/// for the eq.-3 coupling the dirty marking must respect), with and without
/// output slack, across phase counts.
TEST(PhaseAssignment, IncrementalSchedulerMatchesLegacyFullSweep) {
  for (const unsigned bits : {8u, 16u}) {
    Network net;
    const Word a = add_pi_word(net, bits, "a");
    const Word b = add_pi_word(net, bits, "b");
    add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
    detect_and_replace_t1(net, CellLibrary{});  // plant chained T1 bodies

    for (const unsigned phases : {4u, 6u}) {
      for (const Stage slack : {Stage{0}, Stage{3}}) {
        PhaseAssignmentParams p = params(phases);
        p.output_slack = slack;
        p.incremental = false;
        const auto legacy = assign_phases(net, p);
        p.incremental = true;
        const auto incr = assign_phases(net, p);
        ASSERT_TRUE(legacy.feasible);
        ASSERT_TRUE(incr.feasible);
        EXPECT_EQ(incr.stage, legacy.stage)
            << bits << "b, " << phases << " phases, slack " << slack;
        EXPECT_EQ(incr.output_stage, legacy.output_stage);
        EXPECT_EQ(incr.estimated_dffs, legacy.estimated_dffs);
      }
    }
  }
}

/// The view-seeded overload must agree with the from-scratch entry point.
TEST(PhaseAssignment, ViewSeededOverloadMatchesFromScratch) {
  Network net;
  const Word a = add_pi_word(net, 12, "a");
  const Word b = add_pi_word(net, 12, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  detect_and_replace_t1(net, CellLibrary{});

  const CostModel model(CellLibrary{}, AreaConfig{}, MultiphaseConfig{4});
  const IncrementalView view(net, model);
  const auto from_net = assign_phases(net, params(4));
  const auto from_view = assign_phases(view, params(4));
  EXPECT_EQ(from_view.stage, from_net.stage);
  EXPECT_EQ(from_view.estimated_dffs, from_net.estimated_dffs);
}

}  // namespace
}  // namespace t1sfq
