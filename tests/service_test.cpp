/// \file service_test.cpp
/// \brief Synthesis service: framing, codecs, tiers, ECO identity, transport.
///
/// The ECO progression test drives the contract the daemon advertises: an
/// edited resubmission served on the ECO tier must be *bit-identical* to the
/// cold flow of the same netlist. It runs with `SessionConfig::verify` on, so
/// the session itself shadow-runs the cold flow and demotes any canonical
/// mismatch to a counted fallback — `eco_mismatches == 0` plus `tier == Eco`
/// is the identity assertion — and the Table-I metrics are additionally
/// compared against an independent stateless dispatch of the edited netlist.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchmarks/random_net.hpp"
#include "benchmarks/suite.hpp"
#include "network/io.hpp"
#include "service/netdiff.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace t1sfq {
namespace {

using service::Server;
using service::ServerConfig;

Network tiny_net() {
  Network net("tiny");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId x = net.add_and(a, b);
  net.add_po(net.add_xor(x, c), "s");
  return net;
}

/// Sparse planted-cone random circuit: T1 detection converts on it, but most
/// gates keep a T1-free neighborhood, so single-gate edits stay ECO-eligible.
Network sparse_random(unsigned gates) {
  Network net = bench::random_network(/*seed=*/7, /*num_pis=*/32, gates,
                                      bench::RandomPoPolicy::AllSinks,
                                      /*plant_cone_every=*/200);
  net.set_name("rand" + std::to_string(gates));
  return net;
}

/// Copy of \p base with its \p k-th AND/OR gate swapped for the dual gate.
bool edited_variant(const Network& base, unsigned k, Network* out) {
  Network net = base;
  unsigned seen = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(net.size()); ++id) {
    const Node n = net.node(id);  // copy: add_raw_gate below reallocates
    if (n.dead || (n.type != GateType::And2 && n.type != GateType::Or2)) continue;
    if (seen++ != k) continue;
    const GateType dual = n.type == GateType::And2 ? GateType::Or2 : GateType::And2;
    const NodeId repl = net.add_raw_gate(dual, {n.fanin(0), n.fanin(1)});
    net.substitute(id, repl);
    net.mark_dead(id);
    *out = std::move(net);
    return true;
  }
  return false;
}

FlowRequest request_for(const Network& net, const std::string& session = {}) {
  return FlowRequest::Builder(net).session(session).build();
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(ServiceFraming, RoundTripsMultipleFrames) {
  std::stringstream ss;
  service::write_frame(ss, "first");
  service::write_frame(ss, "");
  service::write_frame(ss, std::string(100000, 'x'));
  std::string payload;
  ASSERT_TRUE(service::read_frame(ss, payload));
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(service::read_frame(ss, payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(service::read_frame(ss, payload));
  EXPECT_EQ(payload.size(), 100000u);
  EXPECT_FALSE(service::read_frame(ss, payload));  // clean EOF
}

TEST(ServiceFraming, RejectsTruncatedFrame) {
  std::stringstream ss;
  service::write_frame(ss, "full payload");
  std::string wire = ss.str();
  wire.resize(wire.size() - 4);  // cut mid-payload
  std::stringstream cut(wire);
  std::string payload;
  try {
    service::read_frame(cut, payload);
    FAIL() << "truncated frame must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::InvalidRequest);
  }
}

TEST(ServiceFraming, RejectsOversizedAnnouncement) {
  // A hostile length prefix must be rejected before allocation.
  std::string wire = {'\x7f', '\x00', '\x00', '\x00'};
  std::stringstream ss(wire);
  std::string payload;
  EXPECT_THROW(service::read_frame(ss, payload), Error);
}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

TEST(ServiceCodec, FlowRequestRoundTrip) {
  const FlowRequest req = FlowRequest::Builder(tiny_net())
                              .circuit("renamed")
                              .phases(5)
                              .use_t1(true)
                              .engine(PhaseEngine::ExactMilp)
                              .output_slack(2)
                              .optimize(true)
                              .opt_rounds(7)
                              .physics_check(true)
                              .observe(true)
                              .session("sess-1")
                              .return_netlist(true)
                              .build();
  const service::Request parsed = service::parse_request(service::encode_flow_request(req));
  ASSERT_EQ(parsed.op, service::Request::Op::Flow);
  const FlowRequest& p = parsed.flow;
  EXPECT_EQ(p.circuit, "renamed");
  EXPECT_EQ(p.phases, 5u);
  EXPECT_TRUE(p.use_t1);
  EXPECT_EQ(p.engine, PhaseEngine::ExactMilp);
  EXPECT_EQ(p.output_slack, 2);
  EXPECT_TRUE(p.optimize);
  EXPECT_EQ(p.opt_rounds, 7u);
  EXPECT_TRUE(p.physics_check);
  EXPECT_TRUE(p.observe);
  EXPECT_EQ(p.session, "sess-1");
  EXPECT_TRUE(p.return_netlist);
  EXPECT_EQ(p.network.num_pis(), 3u);
  EXPECT_EQ(p.network.num_pos(), 1u);
  EXPECT_EQ(p.network.pi_name(0), "a");
  EXPECT_EQ(p.config_signature(), req.config_signature());
}

TEST(ServiceCodec, ResponseRoundTrip) {
  FlowResponse resp;
  resp.ok = true;
  resp.tier = FlowTier::Eco;
  resp.cache_key = 0xdeadbeefcafef00dull;
  resp.metrics.num_gates = 10;
  resp.metrics.num_dffs = 4;
  resp.metrics.area_jj = 123;
  resp.metrics.breakdown = {70, 30, 13, 10};
  resp.metrics.depth_cycles = 3;
  resp.timings.total_ms = 1.5;
  resp.netlist_blif = ".model m\n.end\n";
  const FlowResponse p = service::parse_response(service::encode_response(resp));
  EXPECT_TRUE(p.ok);
  EXPECT_EQ(p.tier, FlowTier::Eco);
  EXPECT_EQ(p.cache_key, resp.cache_key);
  EXPECT_EQ(p.metrics.num_gates, 10u);
  EXPECT_EQ(p.metrics.num_dffs, 4u);
  EXPECT_EQ(p.metrics.area_jj, 123u);
  EXPECT_EQ(p.metrics.breakdown.logic, 70u);
  EXPECT_EQ(p.metrics.breakdown.clock, 10u);
  EXPECT_EQ(p.metrics.depth_cycles, 3u);
  EXPECT_DOUBLE_EQ(p.timings.total_ms, 1.5);
  EXPECT_EQ(p.netlist_blif, resp.netlist_blif);
}

TEST(ServiceCodec, ErrorResponseRoundTrip) {
  const FlowResponse p = service::parse_response(
      service::encode_error(ErrorCode::InfeasibleSchedule, "no feasible schedule"));
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.error, ErrorCode::InfeasibleSchedule);
  EXPECT_EQ(p.message, "no feasible schedule");
}

// ---------------------------------------------------------------------------
// Malformed requests
// ---------------------------------------------------------------------------

TEST(ServiceServer, MalformedRequestsBecomeStructuredErrors) {
  Server server(ServerConfig{.disk_cache = false});

  const auto expect_error = [&](const std::string& payload, ErrorCode code) {
    const FlowResponse r = service::parse_response(server.handle(payload));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, code) << payload;
    EXPECT_FALSE(r.message.empty());
  };
  expect_error("this is not json", ErrorCode::ParseError);
  expect_error(R"({"schema":"t1sfq-flow-v0","op":"ping"})", ErrorCode::InvalidRequest);
  expect_error(R"({"schema":"t1sfq-flow-v1","op":"transmogrify"})",
               ErrorCode::InvalidRequest);
  expect_error(R"({"schema":"t1sfq-flow-v1","op":"flow"})", ErrorCode::InvalidRequest);
  expect_error(R"({"schema":"t1sfq-flow-v1","op":"flow","blif":".model x\n.garbage\n"})",
               ErrorCode::ParseError);
  // The daemon survives all of the above.
  const std::string pong = server.handle(service::encode_ping());
  EXPECT_NE(pong.find("pong"), std::string::npos);
  EXPECT_EQ(server.stats().errors, 5u);
}

TEST(ServiceServer, ApiMisuseIsAStructuredError) {
  Server server(ServerConfig{.disk_cache = false});
  FlowRequest req = request_for(tiny_net());
  req.phases = 3;  // T1 landing slots need >= 4 phases
  req.use_t1 = true;
  const FlowResponse r = server.dispatch(req);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, ErrorCode::InvalidRequest);
}

// ---------------------------------------------------------------------------
// Tiers
// ---------------------------------------------------------------------------

TEST(ServiceServer, ColdThenWarmOnReplay) {
  Server server(ServerConfig{.disk_cache = false});
  const Network net = tiny_net();
  const FlowResponse cold = server.dispatch(request_for(net));
  ASSERT_TRUE(cold.ok) << cold.message;
  EXPECT_EQ(cold.tier, FlowTier::Cold);
  const FlowResponse warm = server.dispatch(request_for(net));
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.tier, FlowTier::Warm);
  EXPECT_EQ(warm.cache_key, cold.cache_key);
  EXPECT_EQ(warm.metrics.num_dffs, cold.metrics.num_dffs);
  EXPECT_EQ(warm.metrics.area_jj, cold.metrics.area_jj);
  EXPECT_EQ(server.stats().cold, 1u);
  EXPECT_EQ(server.stats().warm, 1u);
}

/// Same circuit, different node numbering: rebuilds \p net along another
/// valid topological order (level ascending, id descending within a level).
Network renumbered(const Network& net) {
  Network out(net.name());
  std::vector<NodeId> map(net.size(), kNullNode);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi(i)] = out.add_pi(net.pi_name(i));
  }
  const std::vector<uint32_t> lvl = net.levels();
  std::vector<NodeId> order = net.topo_order();
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return lvl[a] != lvl[b] ? lvl[a] < lvl[b] : a > b;
  });
  for (const NodeId id : order) {
    const Node& n = net.node(id);
    if (map[id] != kNullNode) continue;  // PIs handled above
    if (n.type == GateType::Const0) {
      map[id] = out.get_const0();
    } else if (n.type == GateType::Const1) {
      map[id] = out.get_const1();
    } else {
      std::vector<NodeId> fis;
      for (uint8_t s = 0; s < n.num_fanins; ++s) fis.push_back(map[n.fanin(s)]);
      map[id] = out.add_raw_gate(n.type, fis);
    }
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    out.add_po(map[net.po(i)], net.po_name(i));
  }
  return out;
}

TEST(ServiceServer, WarmHitSurvivesRenumbering) {
  // A pure renumbering is not an edit: the ECO session must recognize the
  // circuit as unchanged (empty diff) and serve its held answer warm.
  Server server(ServerConfig{.disk_cache = false});
  const Network net = sparse_random(400);
  ASSERT_TRUE(server.dispatch(request_for(net, "s")).ok);
  const FlowResponse again = server.dispatch(request_for(renumbered(net), "s"));
  ASSERT_TRUE(again.ok) << again.message;
  EXPECT_EQ(again.tier, FlowTier::Warm);
}

TEST(ServiceServer, EcoProgressionIsBitIdenticalToCold) {
  ServerConfig cfg;
  cfg.disk_cache = false;
  cfg.session.verify = true;  // shadow-run the cold flow after every ECO
  Server server(cfg);

  const Network base = sparse_random(2000);
  const FlowResponse est = server.dispatch(request_for(base, "eco"));
  ASSERT_TRUE(est.ok) << est.message;
  EXPECT_EQ(est.tier, FlowTier::Cold);

  // Probe single-gate edits until one serves on the ECO tier (edits landing
  // in a T1 region legitimately fall back cold).
  Network session_base = base;
  FlowResponse eco;
  bool got_eco = false;
  for (unsigned k = 0; k < 12 && !got_eco; ++k) {
    Network edited("");
    ASSERT_TRUE(edited_variant(session_base, 1 + k * 29, &edited));
    const FlowResponse r = server.dispatch(request_for(edited, "eco"));
    ASSERT_TRUE(r.ok) << r.message;
    session_base = std::move(edited);
    if (r.tier == FlowTier::Eco) {
      eco = r;
      got_eco = true;
    }
  }
  ASSERT_TRUE(got_eco) << "no probe served on the ECO tier";
  // verify-mode accounting: a canonical mismatch would have been demoted.
  EXPECT_EQ(server.stats().eco_mismatches, 0u);
  EXPECT_GE(server.stats().eco, 1u);

  // The ECO answer must equal an independent cold run of the same netlist.
  Server fresh(ServerConfig{.disk_cache = false});
  const FlowResponse cold = fresh.dispatch(request_for(session_base));
  ASSERT_TRUE(cold.ok) << cold.message;
  EXPECT_EQ(eco.metrics.num_gates, cold.metrics.num_gates);
  EXPECT_EQ(eco.metrics.num_dffs, cold.metrics.num_dffs);
  EXPECT_EQ(eco.metrics.num_splitters, cold.metrics.num_splitters);
  EXPECT_EQ(eco.metrics.area_jj, cold.metrics.area_jj);
  EXPECT_EQ(eco.metrics.depth_cycles, cold.metrics.depth_cycles);
  EXPECT_EQ(eco.metrics.t1_used, cold.metrics.t1_used);
}

TEST(ServiceServer, ConfigChangeFallsBackCold) {
  Server server(ServerConfig{.disk_cache = false});
  const Network base = sparse_random(400);
  ASSERT_TRUE(server.dispatch(request_for(base, "s")).ok);
  FlowRequest changed = request_for(base, "s");
  changed.output_slack = 1;  // knob change: session must re-establish
  const FlowResponse r = server.dispatch(changed);
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.tier, FlowTier::Cold);
}

// ---------------------------------------------------------------------------
// Batch + transport
// ---------------------------------------------------------------------------

TEST(ServiceServer, BatchPreservesRequestOrder) {
  Server server(ServerConfig{.disk_cache = false});
  const auto suite = bench::make_suite_scaled(8);
  std::vector<FlowRequest> jobs;
  for (std::size_t i = 0; i < 3; ++i) {
    for (const auto& c : suite) {
      if (jobs.size() >= 9) break;
      FlowRequest r = request_for(c.generate());
      r.circuit = c.name + "#" + std::to_string(i);
      jobs.push_back(std::move(r));
    }
  }
  const std::string reply =
      server.handle(service::encode_batch_request(jobs, /*threads=*/4));
  const auto responses = service::parse_batch_response(reply);
  ASSERT_EQ(responses.size(), jobs.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].ok) << i << ": " << responses[i].message;
    EXPECT_GT(responses[i].metrics.num_gates, 0u);
  }
  EXPECT_EQ(server.stats().requests, jobs.size());
}

TEST(ServiceServer, ServeLoopHandlesPingFlowStatsShutdown) {
  Server server(ServerConfig{.disk_cache = false});
  std::stringstream in, out;
  service::write_frame(in, service::encode_ping());
  service::write_frame(in, service::encode_flow_request(request_for(tiny_net())));
  service::write_frame(in, service::encode_stats_request());
  service::write_frame(in, service::encode_shutdown());
  // A frame after shutdown must not be consumed.
  service::write_frame(in, service::encode_ping());

  const std::size_t served = server.serve(in, out);
  EXPECT_EQ(served, 4u);
  EXPECT_TRUE(server.shutdown_requested());

  std::string payload;
  ASSERT_TRUE(service::read_frame(out, payload));
  EXPECT_NE(payload.find("pong"), std::string::npos);
  ASSERT_TRUE(service::read_frame(out, payload));
  EXPECT_TRUE(service::parse_response(payload).ok);
  ASSERT_TRUE(service::read_frame(out, payload));
  EXPECT_NE(payload.find("\"requests\""), std::string::npos);
  ASSERT_TRUE(service::read_frame(out, payload));
  EXPECT_NE(payload.find("bye"), std::string::npos);
  EXPECT_FALSE(service::read_frame(out, payload));
}

TEST(ServiceServer, BlifIngestFlowExportRoundTrip) {
  Server server(ServerConfig{.disk_cache = false});
  FlowRequest req = request_for(tiny_net());
  req.return_netlist = true;
  const std::string reply = server.handle(service::encode_flow_request(req));
  const FlowResponse r = service::parse_response(reply);
  ASSERT_TRUE(r.ok) << r.message;
  ASSERT_FALSE(r.netlist_blif.empty());

  std::istringstream blif(r.netlist_blif);
  const Network phys = read_blif(blif);
  EXPECT_EQ(phys.num_pis(), 3u);
  EXPECT_EQ(phys.num_pos(), 1u);
  EXPECT_EQ(phys.pi_name(0), "a");
  // Splitters are identity buffers that strash-fold on re-read; the clocked
  // cells must survive the round-trip exactly.
  EXPECT_EQ(phys.count_of(GateType::Dff), r.metrics.num_dffs);
  EXPECT_EQ(phys.num_gates(), r.metrics.num_gates + r.metrics.num_dffs);
}

TEST(ServiceServer, WarmCacheSurvivesRestartViaDiskBlobs) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "t1sfq_service_test_cache";
  fs::remove_all(dir);
  const char* old = std::getenv("T1SFQ_CACHE_DIR");
  const std::string saved = old ? old : "";
  ::setenv("T1SFQ_CACHE_DIR", dir.string().c_str(), 1);

  const Network net = tiny_net();
  uint64_t key = 0;
  {
    Server first{ServerConfig{}};
    const FlowResponse r = first.dispatch(request_for(net));
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.tier, FlowTier::Cold);
    key = r.cache_key;
  }
  {
    Server second{ServerConfig{}};
    const FlowResponse r = second.dispatch(request_for(net));
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.tier, FlowTier::Warm) << "disk blob did not survive restart";
    EXPECT_EQ(r.cache_key, key);
  }
  // Corrupt every blob: the server must fall back cold, not crash or serve it.
  for (const auto& e : fs::directory_iterator(dir)) {
    std::ofstream(e.path(), std::ios::trunc) << "{\"not\":\"a blob\"}";
  }
  {
    Server third{ServerConfig{}};
    const FlowResponse r = third.dispatch(request_for(net));
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.tier, FlowTier::Cold);
  }

  if (old) {
    ::setenv("T1SFQ_CACHE_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("T1SFQ_CACHE_DIR");
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// NetDiff
// ---------------------------------------------------------------------------

TEST(ServiceNetDiff, IdenticalNetworksDiffEmpty) {
  const Network net = tiny_net().cleanup();
  const service::NetDiff d = service::diff_networks(net, net);
  EXPECT_TRUE(d.comparable);
  EXPECT_TRUE(d.identical());
}

TEST(ServiceNetDiff, SingleGateSwapIsMinimal) {
  Network a("chain");
  const NodeId p0 = a.add_pi("p0");
  const NodeId p1 = a.add_pi("p1");
  const NodeId p2 = a.add_pi("p2");
  const NodeId g1 = a.add_and(p0, p1);
  const NodeId g2 = a.add_xor(g1, p2);
  const NodeId g3 = a.add_or(g2, p0);
  a.add_po(a.add_and(g3, g2), "o");

  Network b = a;
  const NodeId r = b.add_raw_gate(GateType::Or2, {p0, p1});
  b.substitute(g1, r);
  b.mark_dead(g1);

  const service::NetDiff d = service::diff_networks(a.cleanup(), b.cleanup());
  ASSERT_TRUE(d.comparable);
  EXPECT_FALSE(d.po_reroute);
  // The function edit dirties only the edited cell: the downstream cone is
  // recovered by structural match propagation, not stranded by the changed
  // simulation values.
  EXPECT_EQ(d.dirty_new.size(), 1u);
  EXPECT_EQ(d.dead_old.size(), 1u);
  ASSERT_EQ(d.replacements.size(), 1u);
}

TEST(ServiceNetDiff, InterfaceChangeIsNotComparable) {
  const Network a = tiny_net();
  Network b("other");
  b.add_pi("a");
  b.add_pi("b");
  b.add_po(b.add_and(b.pi(0), b.pi(1)), "s");
  const service::NetDiff d = service::diff_networks(a.cleanup(), b.cleanup());
  EXPECT_FALSE(d.comparable);
}

}  // namespace
}  // namespace t1sfq
