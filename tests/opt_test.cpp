/// Unit tests for the pre-mapping optimization subsystem (src/opt/): the
/// rewrite structure database, the three passes in isolation, the PassManager
/// guard, and the flow integration.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "benchmarks/arith.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "network/equivalence.hpp"
#include "network/npn.hpp"
#include "network/simulation.hpp"
#include "opt/balancing.hpp"
#include "opt/cut_rewriting.hpp"
#include "opt/pass.hpp"
#include "opt/resubstitution.hpp"
#include "opt/rewrite_db.hpp"

namespace t1sfq {
namespace {

Network small_adder(unsigned bits) {
  Network net("rca" + std::to_string(bits));
  const Word a = add_pi_word(net, bits, "a");
  const Word b = add_pi_word(net, bits, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  return net;
}

/// Truth table of a single-PO network over its PIs.
TruthTable po_function(const Network& net) { return simulate_truth_tables(net)[0]; }

// ---------------------------------------------------------------------------
// RewriteDb
// ---------------------------------------------------------------------------

TEST(RewriteDb, SingleCellFunctionsCostTheirMarginal) {
  const RewriteDb& db = RewriteDb::instance();
  EXPECT_GT(db.num_settled(), 60000u);  // the default JJ budget reaches almost everything
  // maj3 = 0xe8 on vars {0,1,2}, zero-extended to 4 vars: one Maj3 cell at
  // its library JJ cost plus the clock share.
  const RewriteDb::Params defaults;
  const TruthTable maj = tt3::maj3().extend_to(4);
  const auto m = db.match(maj);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->jj_cost, defaults.lib.jj_maj3 + defaults.clock_jj);
  EXPECT_EQ(m->depth, 1u);
  // Projection costs zero JJ.
  const auto proj = db.match(TruthTable::nth_var(4, 2));
  ASSERT_TRUE(proj.has_value());
  EXPECT_EQ(proj->jj_cost, 0u);
}

TEST(RewriteDb, InstantiationMatchesTheFunction) {
  const RewriteDb& db = RewriteDb::instance();
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    const uint16_t func = static_cast<uint16_t>(rng());
    TruthTable f(4);
    f.set_word(0, func);
    const auto m = db.match(f);
    if (!m) continue;
    Network net;
    std::vector<NodeId> leaves;
    for (int i = 0; i < 4; ++i) {
      leaves.push_back(net.add_pi());
    }
    net.add_po(db.instantiate(*m, leaves, net));
    EXPECT_EQ(po_function(net), f) << "func 0x" << std::hex << func;
  }
}

TEST(RewriteDb, NpnFallbackBridgesWithInverters) {
  // A tiny database (budget = one 2-input cell) knows And2 but not e.g.
  // x0' & x1'; the NPN fallback must still produce a correct structure
  // through inverters.
  RewriteDb::Params p;
  p.max_jj = p.lib.jj_maj3 + p.clock_jj;  // every single cell fits, no pairs
  p.npn_index_jj = p.max_jj;
  const RewriteDb db(p);
  std::mt19937_64 rng(7);
  std::size_t fallback_hits = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const uint16_t func = static_cast<uint16_t>(rng());
    TruthTable f(4);
    f.set_word(0, func);
    const auto m = db.match(f);
    if (!m) continue;
    const bool bridged = m->output_neg || m->input_neg[0] || m->input_neg[1] ||
                         m->input_neg[2] || m->input_neg[3];
    fallback_hits += bridged ? 1 : 0;
    Network net;
    std::vector<NodeId> leaves;
    for (int i = 0; i < 4; ++i) {
      leaves.push_back(net.add_pi());
    }
    net.add_po(db.instantiate(*m, leaves, net));
    EXPECT_EQ(po_function(net), f) << "func 0x" << std::hex << func;
  }
  EXPECT_GT(fallback_hits, 0u);
}

TEST(RewriteDb, NpnIndexAgreesWithTheCanonizer) {
  // The database indexes NPN classes with a fast internal canonizer; this
  // pins it against npn.hpp: for any sampled function whose npn_canonize
  // representative matches the representative of a cost<=1 structure, the
  // fallback lookup must hit (a divergence makes the lower_bound miss and
  // match() return nullopt for an indexed class).
  RewriteDb::Params p;
  p.max_jj = p.lib.jj_maj3 + p.clock_jj;  // every single cell fits, no pairs
  p.npn_index_jj = p.max_jj;
  const RewriteDb db(p);

  // All cost<=1 functions: seeds plus one gate over projections/constants.
  std::vector<TruthTable> members;
  members.push_back(TruthTable::constant(4, false));
  members.push_back(TruthTable::constant(4, true));
  for (unsigned v = 0; v < 4; ++v) {
    members.push_back(TruthTable::nth_var(4, v));
  }
  const std::size_t seeds = members.size();
  for (std::size_t i = 0; i < seeds; ++i) {
    members.push_back(~members[i]);
    for (std::size_t j = i; j < seeds; ++j) {
      members.push_back(members[i] & members[j]);
      members.push_back(members[i] | members[j]);
      members.push_back(members[i] ^ members[j]);
      members.push_back(~(members[i] & members[j]));
      members.push_back(~(members[i] | members[j]));
      members.push_back(~(members[i] ^ members[j]));
      for (std::size_t k = j; k < seeds; ++k) {
        members.push_back(members[i] & members[j] & members[k]);
        members.push_back(members[i] | members[j] | members[k]);
        members.push_back(members[i] ^ members[j] ^ members[k]);
        members.push_back(TruthTable::maj(members[i], members[j], members[k]));
      }
    }
  }
  // Random NPN transforms of indexed members are in an indexed class by
  // construction: the fallback must hit every one of them.
  std::mt19937_64 rng(1234);
  for (int iter = 0; iter < 150; ++iter) {
    TruthTable f = members[rng() % members.size()];
    for (unsigned v = 0; v < 4; ++v) {
      if (rng() & 1) {
        f = f.flip_var(v);
      }
    }
    std::vector<unsigned> perm{0, 1, 2, 3};
    std::shuffle(perm.begin(), perm.end(), rng);
    f = f.permute(perm);
    if (rng() & 1) {
      f = ~f;
    }
    EXPECT_TRUE(db.match(f).has_value()) << "0x" << f.to_hex();
  }
}

TEST(RewriteDb, SmallerSupportFunctionsWork) {
  const RewriteDb& db = RewriteDb::instance();
  // 2-variable cut function (xor2) must match and instantiate over 2 leaves.
  TruthTable f = TruthTable::from_binary("0110");
  const auto m = db.match(f);
  ASSERT_TRUE(m.has_value());
  Network net;
  std::vector<NodeId> leaves{net.add_pi(), net.add_pi()};
  net.add_po(db.instantiate(*m, leaves, net));
  EXPECT_EQ(po_function(net), f.extend_to(2));
}

// ---------------------------------------------------------------------------
// Cut rewriting
// ---------------------------------------------------------------------------

TEST(CutRewriting, CompressesFullAdders) {
  Network net = small_adder(8);
  const Network golden = net.cleanup();
  const std::size_t gates_before = net.num_gates();
  const uint32_t depth_before = net.depth();

  CutRewritingPass pass{OptParams{}};
  const std::size_t applied = pass.run(net);
  net = net.cleanup();

  EXPECT_GT(applied, 0u);
  EXPECT_LT(net.num_gates(), gates_before);
  EXPECT_LE(net.depth(), depth_before);
  // Full adders become xor3/maj3 pairs.
  EXPECT_GT(net.count_of(GateType::Xor3) + net.count_of(GateType::Maj3), 0u);
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(CutRewriting, LeavesOptimalNetworksAlone) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  net.add_po(net.add_maj(a, b, c));
  CutRewritingPass pass{OptParams{}};
  EXPECT_EQ(pass.run(net), 0u);
  EXPECT_EQ(net.count_of(GateType::Maj3), 1u);
}

// ---------------------------------------------------------------------------
// Balancing
// ---------------------------------------------------------------------------

TEST(Balancing, RebalancesLeftFoldChains) {
  Network net;
  std::vector<NodeId> xs;
  for (int i = 0; i < 9; ++i) {
    xs.push_back(net.add_pi());
  }
  NodeId acc = xs[0];
  for (int i = 1; i < 9; ++i) {
    acc = net.add_and(acc, xs[i]);  // depth 8 left fold
  }
  net.add_po(acc);
  const Network golden = net.cleanup();
  ASSERT_EQ(net.depth(), 8u);

  BalancingPass pass{OptParams{}};
  EXPECT_EQ(pass.run(net), 1u);
  net = net.cleanup();
  EXPECT_LE(net.depth(), 3u);  // ternary tree over 9 operands: ceil(log3) = 2
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(Balancing, XorParityCancellation) {
  // x ^ o ^ o ^ o ^ o collapses to x ^ 0 = x.
  Network net;
  const NodeId x = net.add_pi();
  const NodeId o = net.add_pi();
  NodeId acc = x;
  for (int i = 0; i < 4; ++i) {
    acc = net.add_xor(acc, o);
  }
  net.add_po(acc);
  const Network golden = net.cleanup();
  BalancingPass pass{OptParams{}};
  EXPECT_EQ(pass.run(net), 1u);
  net = net.cleanup();
  EXPECT_EQ(net.num_gates(), 0u);  // the PO is the PI itself
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(Balancing, ComplementPairFoldsAndChainToConst) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId na = net.add_not(a);
  net.add_po(net.add_and(net.add_and(a, b), net.add_and(na, c)));
  const Network golden = net.cleanup();
  BalancingPass pass{OptParams{}};
  EXPECT_EQ(pass.run(net), 1u);
  net = net.cleanup();
  EXPECT_EQ(net.num_gates(), 0u);  // a & !a & ... = 0
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(Balancing, InverterRecreatedAfterEarlierCommit) {
  // Regression: an Or-chain commit rewires the chain's consumers via
  // substitute(), leaving the strash bucket of a downstream inverter keyed by
  // the stale fanin; when a later And-chain keeps that operand complemented,
  // add_not() creates a fresh node — its level/cost must be accounted, not
  // read out of bounds.
  Network net;
  std::vector<NodeId> p;
  for (int i = 0; i < 6; ++i) {
    p.push_back(net.add_pi());
  }
  const NodeId orc = net.add_or(net.add_or(net.add_or(p[0], p[1]), p[2]), p[3]);
  const NodeId inv = net.add_not(orc);
  net.add_po(net.add_and(net.add_and(net.add_and(inv, p[4]), p[5]), inv));
  const Network golden = net.cleanup();

  BalancingPass pass{OptParams{}};
  pass.run(net);
  net = net.cleanup();
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
  EXPECT_LE(net.depth(), golden.depth());
}

TEST(Balancing, PrefersTernaryCellsForArea) {
  // Four equal-arrival operands: both shapes reach depth 2, but
  // and3(and2(a,b),c,d) is 24 JJ against 30 JJ for three and2.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId d = net.add_pi();
  net.add_po(net.add_and(net.add_and(net.add_and(a, b), c), d));
  BalancingPass pass{OptParams{}};
  EXPECT_EQ(pass.run(net), 1u);
  net = net.cleanup();
  EXPECT_EQ(net.count_of(GateType::And3), 1u);
  EXPECT_EQ(net.count_of(GateType::And2), 1u);
}

// ---------------------------------------------------------------------------
// Resubstitution
// ---------------------------------------------------------------------------

TEST(Resubstitution, MergesStructurallyDifferentEquivalents) {
  // h1 = (a^b)^c and h2 = a^(b^c) are the same function but strash cannot see
  // it; resubstitution must reroute h2's fanout to h1.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId h1 = net.add_xor(net.add_xor(a, b), c);
  const NodeId h2 = net.add_xor(a, net.add_xor(b, c));
  net.add_po(net.add_and(h1, net.add_not(h2)));
  const Network golden = net.cleanup();
  const std::size_t gates_before = net.num_gates();

  ResubstitutionPass pass{OptParams{}};
  EXPECT_GT(pass.run(net), 0u);
  net = net.cleanup();
  EXPECT_LT(net.num_gates(), gates_before);
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(Resubstitution, UsesAnInverterForComplementedMatches) {
  // g = nand(a,b) elsewhere recomputed as or(!a,!b): one inverter from the
  // existing nand beats recomputing the whole complement cone.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId f = net.add_and(a, b);
  const NodeId g = net.add_or(net.add_not(a), net.add_not(b));  // = !(a&b)
  net.add_po(f);
  net.add_po(net.add_xor(g, b));
  const Network golden = net.cleanup();

  ResubstitutionPass pass{OptParams{}};
  EXPECT_GT(pass.run(net), 0u);
  net = net.cleanup();
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
  // The or/not-cone is gone; a single inverter taps the and gate.
  EXPECT_EQ(net.count_of(GateType::Or2), 0u);
}

TEST(Resubstitution, InverterCreatedByEarlierCommitMayDieLater) {
  // Regression: a complemented resubstitution creates a fresh inverter whose
  // id lies beyond the pass's original node span; a later commit whose MFFC
  // swallows that inverter must not write out of bounds in the liveness
  // bookkeeping. Here g = or(!a,!b) resubstitutes to Not(and(a,b)) (new
  // inverter X), then c = xor(g,b) resubstitutes to or(a,!b), killing X.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId d = net.add_and(a, b);
  const NodeId e = net.add_or(a, net.add_not(b));
  const NodeId g = net.add_or(net.add_not(a), net.add_not(b));
  net.add_po(d);
  net.add_po(e);
  net.add_po(net.add_xor(g, b));
  const Network golden = net.cleanup();

  ResubstitutionPass pass{OptParams{}};
  EXPECT_GT(pass.run(net), 0u);
  net = net.cleanup();
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(Resubstitution, FindsConstantNodes) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId zero = net.get_const0();  // donors must precede their targets
  // (a & b) & (a ^ b) == 0, built so folding cannot see it.
  const NodeId f = net.add_and(net.add_and(a, b), net.add_xor(a, b));
  net.add_po(f);
  net.add_po(zero);
  const Network golden = net.cleanup();
  ResubstitutionPass pass{OptParams{}};
  EXPECT_GT(pass.run(net), 0u);
  net = net.cleanup();
  EXPECT_EQ(net.num_gates(), 0u);
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

// ---------------------------------------------------------------------------
// PassManager / optimize()
// ---------------------------------------------------------------------------

TEST(PassManager, StandardPipelineRecordsStats) {
  Network net = small_adder(8);
  const Network golden = net.cleanup();
  OptParams params;
  PassManager manager = PassManager::standard(params);
  EXPECT_EQ(manager.num_passes(), 3u);
  const OptSummary s = manager.run(net);

  EXPECT_GT(s.total_applied, 0u);
  EXPECT_LT(s.gates_after, s.gates_before);
  EXPECT_LE(s.depth_after, s.depth_before);
  EXPECT_LE(s.plan_dffs_after, s.plan_dffs_before);
  ASSERT_FALSE(s.passes.empty());
  for (const PassStats& ps : s.passes) {
    EXPECT_GE(ps.gates_before, ps.gates_after);  // passes never add gates
    EXPECT_GE(ps.depth_before, ps.depth_after);  // nor depth
    if (ps.applied > 0) {
      EXPECT_EQ(ps.verdict, PassVerdict::Proved);  // small nets: full SAT proof
    }
  }
  EXPECT_EQ(check_equivalence(net, golden).result, EquivalenceResult::Equivalent);
}

TEST(PassManager, DisabledIsANoop) {
  Network net = small_adder(4);
  const std::size_t gates = net.num_gates();
  OptParams params;
  params.enable = false;
  const OptSummary s = optimize(net, params);
  EXPECT_EQ(s.total_applied, 0u);
  EXPECT_EQ(net.num_gates(), gates);
}

TEST(PassManager, PerPassTogglesAreHonored) {
  OptParams params;
  params.balancing = false;
  params.resubstitution = false;
  PassManager manager = PassManager::standard(params);
  EXPECT_EQ(manager.num_passes(), 1u);
}

// ---------------------------------------------------------------------------
// Flow integration
// ---------------------------------------------------------------------------

TEST(OptFlow, AdderFlowDominatesSeedFlow) {
  const Network net = small_adder(12);
  FlowParams off;
  off.opt.enable = false;
  FlowParams on;
  const FlowResult base = run_flow(net, off);
  const FlowResult optd = run_flow(net, on);

  EXPECT_LT(optd.metrics.opt_gates, optd.metrics.pre_opt_gates);
  EXPECT_LE(optd.metrics.num_dffs, base.metrics.num_dffs);
  EXPECT_LE(optd.metrics.depth_cycles, base.metrics.depth_cycles);
  EXPECT_LE(optd.metrics.area_jj, base.metrics.area_jj);
  EXPECT_GT(optd.metrics.opt_applied, 0u);
  EXPECT_TRUE(verify_flow(optd, net, MultiphaseConfig{4}));
}

TEST(OptFlow, MetricsSurfaceInTheReport) {
  const Network net = small_adder(4);
  TableRow row;
  row.name = net.name();
  FlowParams p;
  p.use_t1 = false;
  row.single_phase = run_flow(net, p).metrics;
  row.multi_phase = run_flow(net, p).metrics;
  p.use_t1 = true;
  row.t1 = run_flow(net, p).metrics;

  const TableSummary s = summarize({row});
  EXPECT_GT(s.opt_gate_ratio, 0.0);
  EXPECT_LT(s.opt_gate_ratio, 1.0);  // the optimizer shrank the adder

  std::ostringstream os;
  print_table(os, {row}, 4);
  EXPECT_NE(os.str().find("G.opt"), std::string::npos);
}

}  // namespace
}  // namespace t1sfq
