#include "solver/sat.hpp"

#include <gtest/gtest.h>

#include <random>

namespace t1sfq {
namespace {

TEST(Sat, EmptyFormulaIsSat) {
  SatSolver s;
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, UnitClauses) {
  SatSolver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos_lit(a)});
  s.add_clause({neg_lit(b)});
  ASSERT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));
}

TEST(Sat, ConflictingUnitsUnsat) {
  SatSolver s;
  const Var a = s.new_var();
  s.add_clause({pos_lit(a)});
  EXPECT_FALSE(s.add_clause({neg_lit(a)}));
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, SimpleImplicationChain) {
  SatSolver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(s.new_var());
  }
  for (int i = 0; i + 1 < 10; ++i) {
    s.add_clause({neg_lit(v[i]), pos_lit(v[i + 1])});  // v_i -> v_{i+1}
  }
  s.add_clause({pos_lit(v[0])});
  ASSERT_EQ(s.solve(), SatResult::Sat);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(s.model_value(v[i]));
  }
}

TEST(Sat, XorChainSatisfiable) {
  // x0 ^ x1 ^ ... parity constraints encoded as CNF remain satisfiable.
  SatSolver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  // a ^ b ^ c = 1
  s.add_clause({pos_lit(a), pos_lit(b), pos_lit(c)});
  s.add_clause({pos_lit(a), neg_lit(b), neg_lit(c)});
  s.add_clause({neg_lit(a), pos_lit(b), neg_lit(c)});
  s.add_clause({neg_lit(a), neg_lit(b), pos_lit(c)});
  ASSERT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.model_value(a) ^ s.model_value(b) ^ s.model_value(c));
}

TEST(Sat, TautologyIgnored) {
  SatSolver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos_lit(a), neg_lit(a)}));
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

/// Pigeonhole principle PHP(n): n+1 pigeons into n holes — classically UNSAT
/// and a canonical CDCL stress test.
void add_php(SatSolver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      x[p][h] = s.new_var();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(pos_lit(x[p][h]));
    }
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({neg_lit(x[p1][h]), neg_lit(x[p2][h])});
      }
    }
  }
}

TEST(Sat, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    SatSolver s;
    add_php(s, holes);
    EXPECT_EQ(s.solve(), SatResult::Unsat) << "PHP(" << holes << ")";
  }
}

TEST(Sat, PigeonholeExactFitSat) {
  // n pigeons into n holes is satisfiable.
  const int n = 5;
  SatSolver s;
  std::vector<std::vector<Var>> x(n, std::vector<Var>(n));
  for (auto& row : x) {
    for (auto& v : row) {
      v = s.new_var();
    }
  }
  for (int p = 0; p < n; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < n; ++h) {
      c.push_back(pos_lit(x[p][h]));
    }
    s.add_clause(c);
  }
  for (int h = 0; h < n; ++h) {
    for (int p1 = 0; p1 < n; ++p1) {
      for (int p2 = p1 + 1; p2 < n; ++p2) {
        s.add_clause({neg_lit(x[p1][h]), neg_lit(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, AssumptionsRestrictModels) {
  SatSolver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos_lit(a), pos_lit(b)});
  ASSERT_EQ(s.solve({neg_lit(a)}), SatResult::Sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  ASSERT_EQ(s.solve({neg_lit(b)}), SatResult::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, ContradictoryAssumptionsUnsat) {
  SatSolver s;
  const Var a = s.new_var();
  s.add_clause({pos_lit(a)});
  EXPECT_EQ(s.solve({neg_lit(a)}), SatResult::Unsat);
  // The formula itself stays satisfiable.
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, SolveIsRepeatable) {
  SatSolver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos_lit(a), pos_lit(b)});
  s.add_clause({neg_lit(a), pos_lit(b)});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.model_value(b));
  }
}

TEST(Sat, IncrementalClauseAddition) {
  SatSolver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos_lit(a), pos_lit(b)});
  ASSERT_EQ(s.solve(), SatResult::Sat);
  s.add_clause({neg_lit(a)});
  ASSERT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.model_value(b));
  s.add_clause({neg_lit(b)});
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  SatSolver s;
  add_php(s, 8);  // hard instance
  EXPECT_EQ(s.solve({}, 10), SatResult::Unknown);
}

TEST(Sat, RandomThreeSatModelsAreValid) {
  std::mt19937_64 rng(42);
  for (int inst = 0; inst < 20; ++inst) {
    SatSolver s;
    const int nv = 30;
    std::vector<Var> v;
    for (int i = 0; i < nv; ++i) {
      v.push_back(s.new_var());
    }
    // Low clause/var ratio: almost surely satisfiable.
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 60; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k) {
        const Var var = v[rng() % nv];
        cl.push_back(rng() & 1 ? pos_lit(var) : neg_lit(var));
      }
      clauses.push_back(cl);
      s.add_clause(cl);
    }
    if (s.solve() == SatResult::Sat) {
      for (const auto& cl : clauses) {
        bool sat = false;
        for (const Lit l : cl) {
          sat |= s.model_value(lit_var(l)) ^ lit_sign(l);
        }
        EXPECT_TRUE(sat) << "model violates a clause";
      }
    }
  }
}

TEST(Sat, StatsAreTracked) {
  SatSolver s;
  add_php(s, 5);
  s.solve();
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

}  // namespace
}  // namespace t1sfq
