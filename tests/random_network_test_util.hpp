#pragma once
/// \file random_network_test_util.hpp
/// \brief Shared random-network generator for property-based tests.
///
/// Forwards to the library-side generator (benchmarks/random_net.hpp) with
/// the historical property-test output policy, so the tests and the scaling
/// bench exercise the same distribution.

#include "benchmarks/random_net.hpp"
#include "network/network.hpp"

namespace t1sfq {
namespace testutil {

/// Random DAG over the SFQ cell vocabulary. Biased toward xor/and/or pairs so
/// T1-matchable cones appear organically.
inline Network random_network(uint64_t seed, unsigned num_pis, unsigned num_gates) {
  return bench::random_network(seed, num_pis, num_gates,
                               bench::RandomPoPolicy::SampleDeepest);
}

}  // namespace testutil
}  // namespace t1sfq
