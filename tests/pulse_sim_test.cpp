#include "sfq/pulse_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "network/simulation.hpp"

namespace t1sfq {
namespace {

// ---------------------------------------------------------------------------
// T1 state machine (paper Fig. 1b).
// ---------------------------------------------------------------------------

TEST(T1StateMachine, SinglePulseReadsOutSum) {
  // Fig. 1b, first burst: one T pulse (a) then R: Q* on the pulse, S on R.
  T1StateMachine fsm;
  const auto r1 = fsm.on_t();
  EXPECT_TRUE(r1.q_pulse);
  EXPECT_FALSE(r1.c_pulse);
  EXPECT_TRUE(fsm.state());
  EXPECT_TRUE(fsm.on_r());   // S pulses
  EXPECT_FALSE(fsm.state()); // loop reset
}

TEST(T1StateMachine, TwoPulsesEmitCarryAndNoSum) {
  // Fig. 1b, second burst: a then b -> C* fires on the second pulse; R
  // finds the loop empty, no S.
  T1StateMachine fsm;
  EXPECT_TRUE(fsm.on_t().q_pulse);
  const auto r2 = fsm.on_t();
  EXPECT_TRUE(r2.c_pulse);
  EXPECT_FALSE(r2.q_pulse);
  EXPECT_FALSE(fsm.state());
  EXPECT_FALSE(fsm.on_r());
}

TEST(T1StateMachine, ThreePulsesEmitCarryAndSum) {
  // Fig. 1b, third burst: a, b, c -> Q*, C*, Q*; R reads S (parity 1).
  T1StateMachine fsm;
  EXPECT_TRUE(fsm.on_t().q_pulse);
  EXPECT_TRUE(fsm.on_t().c_pulse);
  EXPECT_TRUE(fsm.on_t().q_pulse);
  EXPECT_TRUE(fsm.on_r());
}

TEST(T1StateMachine, RejectedResetWhenEmpty) {
  T1StateMachine fsm;
  EXPECT_FALSE(fsm.on_r());  // JR rejects the pulse (Fig. 1a)
  EXPECT_FALSE(fsm.state());
}

TEST(T1StateMachine, ParityOverLongTrains) {
  T1StateMachine fsm;
  for (int pulses = 0; pulses <= 8; ++pulses) {
    fsm.reset();
    for (int i = 0; i < pulses; ++i) {
      fsm.on_t();
    }
    EXPECT_EQ(fsm.on_r(), pulses % 2 == 1) << pulses << " pulses";
  }
}

// ---------------------------------------------------------------------------
// Scheduled-netlist simulation.
// ---------------------------------------------------------------------------

/// Adder slice as a schedulable network: and/or/xor chain.
Network small_net(std::vector<Stage>& stage, unsigned phases) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g1 = net.add_xor(a, b);
  const NodeId g2 = net.add_and(a, b);
  const NodeId g3 = net.add_or(g1, g2);
  net.add_po(g3);
  stage.assign(net.size(), 0);
  stage[g1] = 1;
  stage[g2] = 1;
  stage[g3] = 2;
  (void)phases;
  return net;
}

TEST(PulseSim, LegalScheduleHasNoViolations) {
  std::vector<Stage> stage;
  const Network net = small_net(stage, 4);
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true, false});
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.po_values[0]);  // xor(1,0) | and(1,0) = 1
}

TEST(PulseSim, GapBeyondWindowIsFlagged) {
  std::vector<Stage> stage;
  const Network net = small_net(stage, 4);
  stage[net.po(0)] = 7;  // or-gate at stage 7, fanins at 1: gap 6 > 4
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true, true});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violations[0].kind, ViolationKind::GapExceedsWindow);
  EXPECT_FALSE(res.violations[0].describe().empty());
}

TEST(PulseSim, NonPositiveGapIsFlagged) {
  std::vector<Stage> stage;
  const Network net = small_net(stage, 4);
  stage[net.po(0)] = 1;  // same stage as its fanins
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true, true});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violations[0].kind, ViolationKind::NonPositiveGap);
}

Network t1_net(std::vector<Stage>& stage, Stage sa, Stage sb, Stage sc, Stage st1) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId da = net.add_dff(a);
  const NodeId db = net.add_dff(b);
  const NodeId dc = net.add_dff(c);
  const NodeId t1 = net.add_t1(da, db, dc);
  net.add_po(net.add_t1_port(t1, T1PortFn::Sum));
  net.add_po(net.add_t1_port(t1, T1PortFn::Carry));
  net.add_po(net.add_t1_port(t1, T1PortFn::Or));
  stage.assign(net.size(), 0);
  stage[da] = sa;
  stage[db] = sb;
  stage[dc] = sc;
  stage[t1] = st1;
  return net;
}

TEST(PulseSim, T1WithDistinctSlotsComputesAllPorts) {
  std::vector<Stage> stage;
  const Network net = t1_net(stage, 1, 2, 3, 4);  // slots 3, 2, 1 before R at 4
  const MultiphaseConfig clk{4};
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> pis{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const auto res = pulse_simulate(net, stage, clk, pis);
    EXPECT_TRUE(res.ok()) << "minterm " << m;
    const unsigned ones = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(res.po_values[0], ones % 2 == 1);
    EXPECT_EQ(res.po_values[1], ones >= 2);
    EXPECT_EQ(res.po_values[2], ones >= 1);
  }
}

TEST(PulseSim, T1InputCollisionDetected) {
  // Two inputs at the same stage: the paper's data hazard (overlapping
  // pulses read as one).
  std::vector<Stage> stage;
  const Network net = t1_net(stage, 2, 2, 3, 4);
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true, true, false});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violations[0].kind, ViolationKind::T1InputCollision);
}

TEST(PulseSim, T1InputOutsideCycleDetected) {
  // Inputs released >= n stages before the T1 clock are outside the safe
  // window (the previous R pulse would interleave).
  std::vector<Stage> stage;
  const Network net = t1_net(stage, 1, 2, 3, 8);  // first input 7 stages early
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true, false, false});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violations[0].kind, ViolationKind::T1InputOutsideCycle);
}

TEST(PulseSim, ConstantsAreTimingExempt) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId g = net.add_raw_gate(GateType::And2, {a, net.get_const1()});
  net.add_po(g);
  std::vector<Stage> stage(net.size(), 0);
  stage[g] = 9;  // far from stage 0, but the constant has no pulse to park
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true});
  // The PI edge still violates; the constant edge must not add a second one.
  std::size_t const_violations = 0;
  for (const auto& v : res.violations) {
    if (net.node(v.fanin).type == GateType::Const1) {
      ++const_violations;
    }
  }
  EXPECT_EQ(const_violations, 0u);
}

TEST(PulseSim, PulseVerifyAcceptsLegalSchedule) {
  std::vector<Stage> stage;
  const Network net = small_net(stage, 4);
  Network golden;
  const NodeId a = golden.add_pi();
  const NodeId b = golden.add_pi();
  golden.add_po(golden.add_or(a, b));  // xor|and == or
  EXPECT_TRUE(pulse_verify(net, stage, MultiphaseConfig{4}, golden, 1));
}

// ---------------------------------------------------------------------------
// Timing-margin edge cases (physics-oracle audit).
// ---------------------------------------------------------------------------

TEST(PulseSim, ZeroSlackArrivalAtWindowEdgeIsLegal) {
  // gap == n is the last legal arrival (one full clock window, zero slack);
  // gap == n + 1 meets the next wave. The boundary must be inclusive.
  std::vector<Stage> stage;
  const Network net = small_net(stage, 4);
  stage[net.po(0)] = 5;  // fanins release at 1: gap exactly n = 4
  EXPECT_TRUE(pulse_simulate(net, stage, MultiphaseConfig{4}, {true, true}).ok());
  stage[net.po(0)] = 6;  // gap 5 > n
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true, true});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violations[0].kind, ViolationKind::GapExceedsWindow);
}

TEST(PulseSim, SinglePhaseEveryEdgeIsZeroSlack) {
  // n = 1: the only legal gap is exactly 1 — every edge sits at both window
  // boundaries simultaneously and must still be accepted.
  std::vector<Stage> stage;
  Network net = small_net(stage, 1);
  stage[net.po(0)] = 2;  // consumer one stage after its fanins at 1
  EXPECT_TRUE(pulse_simulate(net, stage, MultiphaseConfig{1}, {true, false}).ok());
}

TEST(PulseSim, T1WindowBoundariesAreStrict) {
  // Unlike ordinary cells, both T1 window edges are exclusive: an input
  // landing exactly at σ − n collides with the previous R readout, one at σ
  // with the current one. σ − n + 1 is the earliest legal slot.
  std::vector<Stage> stage;
  const MultiphaseConfig clk{4};
  {
    const Network net = t1_net(stage, 4, 2, 3, 8);  // arrival == σ − n
    const auto res = pulse_simulate(net, stage, clk, {true, false, false});
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.violations[0].kind, ViolationKind::T1InputOutsideCycle);
  }
  {
    const Network net = t1_net(stage, 5, 6, 7, 8);  // slots 3, 2, 1: all legal
    for (std::size_t i = 0; i < 3; ++i) {
      stage[net.pi(i)] = static_cast<Stage>(1 + i);  // keep PI->DFF gaps <= n
    }
    EXPECT_TRUE(pulse_simulate(net, stage, clk, {true, true, true}).ok());
  }
}

TEST(PulseSim, BackToBackPulsesAtT1AreOrderedCorrectly) {
  // Three pulses at consecutive stages (back-to-back, the tightest legal
  // packing) drive the state machine in arrival order: parity and majority
  // must match regardless of which PI feeds which slot.
  std::vector<Stage> stage;
  const Network net = t1_net(stage, 7, 5, 6, 8);  // arrival order: b, c, a
  stage[net.pi(0)] = 3;  // keep the PI->DFF feed edges within one window
  stage[net.pi(1)] = 1;
  stage[net.pi(2)] = 2;
  const MultiphaseConfig clk{4};
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> pis{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const auto res = pulse_simulate(net, stage, clk, pis);
    EXPECT_TRUE(res.ok()) << m;
    const unsigned ones = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(res.po_values[0], ones % 2 == 1) << m;  // Sum
    EXPECT_EQ(res.po_values[1], ones >= 2) << m;      // Carry
    EXPECT_EQ(res.po_values[2], ones >= 1) << m;      // Or
  }
}

TEST(PulseSim, T1PortFeedsDownstreamWithBodyReleaseStage) {
  // A consumer clocked off a T1 port sees the *body's* release stage (the
  // port is a passive pin): gap arithmetic must use it, not the port's
  // (unassigned) stage entry.
  std::vector<Stage> stage;
  Network net = t1_net(stage, 1, 2, 3, 4);
  const NodeId sum = net.po(0);
  const NodeId g = net.add_buf(sum);
  const NodeId h = net.add_gate(GateType::Not, {g});
  net.add_po(h);
  stage.resize(net.size(), 0);
  stage[h] = 8;  // body releases at 4: gap exactly n through port + buf
  EXPECT_TRUE(pulse_simulate(net, stage, MultiphaseConfig{4}, {true, false, false}).ok());
  stage[h] = 9;  // gap 5 — the inherited release must flag this
  const auto res = pulse_simulate(net, stage, MultiphaseConfig{4}, {true, false, false});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violations[0].kind, ViolationKind::GapExceedsWindow);
  EXPECT_EQ(res.violations[0].producer, 4);
}

TEST(PulseSim, ReleaseStagesInheritThroughPassivePins) {
  std::vector<Stage> stage;
  Network net = t1_net(stage, 1, 2, 3, 4);
  const NodeId buf = net.add_buf(net.po(0));  // port -> buf chain
  net.add_po(buf);
  stage.resize(net.size(), 0);
  const auto release = release_stages(net, stage);
  for (NodeId id = 0; id < net.size(); ++id) {
    switch (net.node(id).type) {
      case GateType::Buf:
      case GateType::T1Port:
        EXPECT_EQ(release[id], release[net.node(id).fanin(0)]) << id;
        break;
      default:
        EXPECT_EQ(release[id], stage[id]) << id;
    }
  }
  EXPECT_EQ(release[buf], 4);  // body stage, through two passive pins
}

TEST(PulseSim, UndersizedInputsThrow) {
  std::vector<Stage> stage;
  const Network net = small_net(stage, 4);
  const MultiphaseConfig clk{4};
  std::vector<Stage> short_stage(net.size() - 1, 0);
  EXPECT_THROW(pulse_simulate(net, short_stage, clk, {true, false}),
               std::invalid_argument);
  EXPECT_THROW(pulse_simulate(net, stage, clk, {true}), std::invalid_argument);
  EXPECT_THROW(pulse_simulate(net, stage, clk, {true, false, true}),
               std::invalid_argument);
  EXPECT_THROW(release_stages(net, short_stage), std::invalid_argument);
}

TEST(PulseSim, PulseVerifyRejectsWrongGolden) {
  std::vector<Stage> stage;
  const Network net = small_net(stage, 4);
  Network golden;
  const NodeId a = golden.add_pi();
  const NodeId b = golden.add_pi();
  golden.add_po(golden.add_and(a, b));
  EXPECT_FALSE(pulse_verify(net, stage, MultiphaseConfig{4}, golden, 1));
}

}  // namespace
}  // namespace t1sfq
