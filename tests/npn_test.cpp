#include "network/npn.hpp"

#include <gtest/gtest.h>

#include <random>

namespace t1sfq {
namespace {

TEST(Npn, AndOrNandNorAreOneClass) {
  const auto a = TruthTable::nth_var(2, 0);
  const auto b = TruthTable::nth_var(2, 1);
  const auto and2 = a & b;
  EXPECT_TRUE(npn_equivalent(and2, a | b));
  EXPECT_TRUE(npn_equivalent(and2, ~(a & b)));
  EXPECT_TRUE(npn_equivalent(and2, ~(a | b)));
  EXPECT_TRUE(npn_equivalent(and2, a & ~b));
}

TEST(Npn, XorAndXnorAreOneClass) {
  const auto a = TruthTable::nth_var(2, 0);
  const auto b = TruthTable::nth_var(2, 1);
  EXPECT_TRUE(npn_equivalent(a ^ b, ~(a ^ b)));
  EXPECT_FALSE(npn_equivalent(a ^ b, a & b));
}

TEST(Npn, Maj3ClassContainsMinority) {
  EXPECT_TRUE(npn_equivalent(tt3::maj3(), tt3::minority3()));
  EXPECT_FALSE(npn_equivalent(tt3::maj3(), tt3::xor3()));
  EXPECT_FALSE(npn_equivalent(tt3::maj3(), tt3::or3()));
}

TEST(Npn, Or3ClassContainsAnd3) {
  // AND3 = NOT OR3 with all inputs negated: same NPN class.
  EXPECT_TRUE(npn_equivalent(tt3::or3(), tt3::and3()));
  EXPECT_TRUE(npn_equivalent(tt3::or3(), tt3::nor3()));
}

TEST(Npn, CanonicalFormIsIdempotent) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 30; ++i) {
    TruthTable f(3);
    f.set_word(0, rng());
    const auto c1 = npn_canonize(f).representative;
    const auto c2 = npn_canonize(c1).representative;
    EXPECT_EQ(c1, c2);
  }
}

TEST(Npn, TransformReproducesRepresentative) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 20; ++i) {
    TruthTable f(3);
    f.set_word(0, rng());
    const auto canon = npn_canonize(f);
    // Re-apply the recorded transform manually.
    TruthTable g = f;
    for (unsigned v = 0; v < 3; ++v) {
      if (canon.transform.input_neg[v]) {
        g = g.flip_var(v);
      }
    }
    g = g.permute(canon.transform.perm);
    if (canon.transform.output_neg) {
      g = ~g;
    }
    EXPECT_EQ(g, canon.representative);
  }
}

TEST(Npn, RandomClassMembersShareRepresentative) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 10; ++i) {
    TruthTable f(4);
    f.set_word(0, rng());
    const auto base = npn_canonize(f).representative;
    // Apply a random NPN transform and re-canonize.
    TruthTable g = f;
    for (unsigned v = 0; v < 4; ++v) {
      if (rng() & 1) {
        g = g.flip_var(v);
      }
    }
    g = g.swap_vars(rng() % 4, rng() % 4);
    if (rng() & 1) {
      g = ~g;
    }
    EXPECT_EQ(npn_canonize(g).representative, base);
  }
}

TEST(Npn, PCanonizeSortsSymmetricFunctionsToThemselves) {
  EXPECT_EQ(p_canonize(tt3::maj3()), tt3::maj3());
  EXPECT_EQ(p_canonize(tt3::xor3()), tt3::xor3());
}

TEST(Npn, PCanonizeDiffersFromNpnForPolarity) {
  const auto a = TruthTable::nth_var(2, 0);
  const auto b = TruthTable::nth_var(2, 1);
  // a & ~b is P-distinct from a & b but NPN-equivalent.
  EXPECT_NE(p_canonize(a & ~b), p_canonize(a & b));
  EXPECT_TRUE(npn_equivalent(a & ~b, a & b));
}

TEST(Npn, SixVarThrows) {
  EXPECT_THROW(npn_canonize(TruthTable(6)), std::invalid_argument);
}

TEST(Npn, MismatchedVarCountsNotEquivalent) {
  EXPECT_FALSE(npn_equivalent(TruthTable(2), TruthTable(3)));
}

}  // namespace
}  // namespace t1sfq
