#include "network/truth_table.hpp"

#include <gtest/gtest.h>

#include <random>

namespace t1sfq {
namespace {

TEST(TruthTable, ConstantZeroByDefault) {
  TruthTable tt(3);
  EXPECT_EQ(tt.num_vars(), 3u);
  EXPECT_EQ(tt.num_bits(), 8u);
  EXPECT_TRUE(tt.is_const0());
  EXPECT_FALSE(tt.is_const1());
}

TEST(TruthTable, ConstantOne) {
  const auto tt = TruthTable::constant(4, true);
  EXPECT_TRUE(tt.is_const1());
  EXPECT_EQ(tt.count_ones(), 16u);
}

TEST(TruthTable, TooManyVarsThrows) {
  EXPECT_THROW(TruthTable(17), std::invalid_argument);
}

TEST(TruthTable, NthVarSmall) {
  const auto x0 = TruthTable::nth_var(3, 0);
  const auto x1 = TruthTable::nth_var(3, 1);
  const auto x2 = TruthTable::nth_var(3, 2);
  EXPECT_EQ(x0.to_hex(), "aa");
  EXPECT_EQ(x1.to_hex(), "cc");
  EXPECT_EQ(x2.to_hex(), "f0");
}

TEST(TruthTable, NthVarLarge) {
  // Variable 7 on 8 vars: bit i set iff bit 7 of i is set.
  const auto x7 = TruthTable::nth_var(8, 7);
  EXPECT_FALSE(x7.get_bit(0));
  EXPECT_FALSE(x7.get_bit(127));
  EXPECT_TRUE(x7.get_bit(128));
  EXPECT_TRUE(x7.get_bit(255));
  EXPECT_EQ(x7.count_ones(), 128u);
}

TEST(TruthTable, FromHexRoundTrip) {
  const auto maj = TruthTable::from_hex(3, "e8");
  EXPECT_EQ(maj.to_hex(), "e8");
  EXPECT_EQ(maj.to_binary(), "11101000");
  const auto big = TruthTable::from_hex(7, "0123456789abcdef0123456789abcdef");
  EXPECT_EQ(big.to_hex(), "0123456789abcdef0123456789abcdef");
}

TEST(TruthTable, FromBinary) {
  const auto and2 = TruthTable::from_binary("1000");
  EXPECT_TRUE(and2.get_bit(3));
  EXPECT_FALSE(and2.get_bit(0));
  EXPECT_FALSE(and2.get_bit(1));
  EXPECT_FALSE(and2.get_bit(2));
  EXPECT_THROW(TruthTable::from_binary("101"), std::invalid_argument);
}

TEST(TruthTable, BooleanOperations) {
  const auto a = TruthTable::nth_var(2, 0);
  const auto b = TruthTable::nth_var(2, 1);
  EXPECT_EQ((a & b).to_binary(), "1000");
  EXPECT_EQ((a | b).to_binary(), "1110");
  EXPECT_EQ((a ^ b).to_binary(), "0110");
  EXPECT_EQ((~a).to_binary(), "0101");
}

TEST(TruthTable, NotMasksExcessBits) {
  TruthTable tt(2);
  const auto inv = ~tt;
  EXPECT_TRUE(inv.is_const1());
  EXPECT_EQ(inv.count_ones(), 4u);  // not 64
}

TEST(TruthTable, MajAndIte) {
  const auto a = TruthTable::nth_var(3, 0);
  const auto b = TruthTable::nth_var(3, 1);
  const auto c = TruthTable::nth_var(3, 2);
  EXPECT_EQ(TruthTable::maj(a, b, c), tt3::maj3());
  EXPECT_EQ((a ^ b ^ c), tt3::xor3());
  EXPECT_EQ((a | b | c), tt3::or3());
  EXPECT_EQ(TruthTable::ite(a, b, c).to_hex(), "d8");
}

TEST(TruthTable, NamedFunctions) {
  EXPECT_EQ(tt3::xor3().to_hex(), "96");
  EXPECT_EQ(tt3::xnor3(), ~tt3::xor3());
  EXPECT_EQ(tt3::minority3(), ~tt3::maj3());
  EXPECT_EQ(tt3::nor3(), ~tt3::or3());
  EXPECT_EQ(tt3::and3().count_ones(), 1u);
}

TEST(TruthTable, CofactorsOfMaj) {
  const auto maj = tt3::maj3();
  // maj(1, b, c) = b | c ; maj(0, b, c) = b & c.
  const auto pos = maj.cofactor(0, true);
  const auto neg = maj.cofactor(0, false);
  const auto b = TruthTable::nth_var(3, 1);
  const auto c = TruthTable::nth_var(3, 2);
  EXPECT_EQ(pos, b | c);
  EXPECT_EQ(neg, b & c);
}

TEST(TruthTable, CofactorLargeVar) {
  const auto f = TruthTable::nth_var(8, 7) & TruthTable::nth_var(8, 0);
  EXPECT_EQ(f.cofactor(7, true), TruthTable::nth_var(8, 0));
  EXPECT_TRUE(f.cofactor(7, false).is_const0());
}

TEST(TruthTable, HasVarAndSupport) {
  const auto f = TruthTable::nth_var(4, 1) ^ TruthTable::nth_var(4, 3);
  EXPECT_FALSE(f.has_var(0));
  EXPECT_TRUE(f.has_var(1));
  EXPECT_FALSE(f.has_var(2));
  EXPECT_TRUE(f.has_var(3));
  EXPECT_EQ(f.support_size(), 2u);
}

TEST(TruthTable, ShrinkToSupport) {
  const auto f = TruthTable::nth_var(4, 1) & TruthTable::nth_var(4, 3);
  const auto g = f.shrink_to_support();
  EXPECT_EQ(g.num_vars(), 2u);
  EXPECT_EQ(g.to_binary(), "1000");  // AND2
}

TEST(TruthTable, SwapVars) {
  // f = a & ~b; swapping a,b gives ~a & b.
  const auto a = TruthTable::nth_var(2, 0);
  const auto b = TruthTable::nth_var(2, 1);
  const auto f = a & ~b;
  EXPECT_EQ(f.swap_vars(0, 1), ~a & b);
}

TEST(TruthTable, FlipVar) {
  const auto a = TruthTable::nth_var(2, 0);
  const auto b = TruthTable::nth_var(2, 1);
  EXPECT_EQ((a & b).flip_var(0), ~a & b);
}

TEST(TruthTable, SymmetryDetection) {
  EXPECT_TRUE(tt3::xor3().is_totally_symmetric());
  EXPECT_TRUE(tt3::maj3().is_totally_symmetric());
  EXPECT_TRUE(tt3::or3().is_totally_symmetric());
  EXPECT_TRUE(tt3::and3().is_totally_symmetric());
  const auto asym = TruthTable::nth_var(3, 0) & ~TruthTable::nth_var(3, 1);
  EXPECT_FALSE(asym.is_totally_symmetric());
}

TEST(TruthTable, PermuteIdentityAndRotation) {
  const auto f = TruthTable::from_hex(3, "d8");  // ite(a, b, c)
  EXPECT_EQ(f.permute({0, 1, 2}), f);
  // Rotating inputs of a symmetric function is a no-op.
  EXPECT_EQ(tt3::maj3().permute({1, 2, 0}), tt3::maj3());
}

TEST(TruthTable, ExtendKeepsFunction) {
  const auto f = tt3::maj3();
  const auto g = f.extend_to(5);
  EXPECT_EQ(g.num_vars(), 5u);
  EXPECT_EQ(g.support_size(), 3u);
  EXPECT_EQ(g.shrink_to_support(), f);
}

TEST(TruthTable, OrderingIsTotal) {
  const auto a = tt3::maj3();
  const auto b = tt3::xor3();
  EXPECT_TRUE((a < b) != (b < a) || a == b);
  EXPECT_FALSE(a < a);
}

TEST(TruthTable, HashDistinguishesFunctions) {
  EXPECT_NE(tt3::maj3().hash(), tt3::xor3().hash());
  EXPECT_EQ(tt3::maj3().hash(), TruthTable::from_hex(3, "e8").hash());
}

class TruthTableRandomOps : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruthTableRandomOps, DeMorganHolds) {
  const unsigned n = GetParam();
  std::mt19937_64 rng(n);
  for (int iter = 0; iter < 20; ++iter) {
    TruthTable a(n), b(n);
    for (std::size_t w = 0; w < a.num_words(); ++w) {
      a.set_word(w, rng());
      b.set_word(w, rng());
    }
    EXPECT_EQ(~(a & b), ~a | ~b);
    EXPECT_EQ(~(a | b), ~a & ~b);
    EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
  }
}

TEST_P(TruthTableRandomOps, ShannonExpansionHolds) {
  const unsigned n = GetParam();
  std::mt19937_64 rng(1234 + n);
  for (int iter = 0; iter < 10; ++iter) {
    TruthTable f(n);
    for (std::size_t w = 0; w < f.num_words(); ++w) {
      f.set_word(w, rng());
    }
    for (unsigned v = 0; v < n; ++v) {
      const auto x = TruthTable::nth_var(n, v);
      EXPECT_EQ(f, (x & f.cofactor(v, true)) | (~x & f.cofactor(v, false)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TruthTableRandomOps, ::testing::Values(1u, 2u, 3u, 5u, 6u, 8u, 10u));

}  // namespace
}  // namespace t1sfq
