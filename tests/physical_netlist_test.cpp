/// Integration tests around the *physical* netlists the flow emits: export /
/// re-import round trips, structural invariants, and the canonical DFF plan.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "benchmarks/arith.hpp"
#include "core/flow.hpp"
#include "network/equivalence.hpp"
#include "network/io.hpp"
#include "network/simulation.hpp"

namespace t1sfq {
namespace {

FlowResult adder_flow(unsigned bits, unsigned phases, bool use_t1) {
  Network net("rca");
  const Word a = add_pi_word(net, bits, "a");
  const Word b = add_pi_word(net, bits, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  FlowParams p;
  p.clk.phases = phases;
  p.use_t1 = use_t1;
  // Seed-reproduction mode: these tests pin exact physical-netlist structure;
  // the pre-mapping optimizer has its own tests.
  p.opt.enable = false;
  return run_flow(net, p);
}

TEST(PhysicalNetlist, BlifRoundTripWithDffsAndT1) {
  const FlowResult res = adder_flow(4, 4, true);
  std::stringstream ss;
  write_blif(res.physical.net, ss);
  const Network back = read_blif(ss);
  EXPECT_EQ(back.count_of(GateType::Dff), res.physical.num_dffs);
  EXPECT_EQ(back.count_of(GateType::T1), res.physical.net.count_of(GateType::T1));
  EXPECT_TRUE(random_simulation_equal(back, res.physical.net));
}

TEST(PhysicalNetlist, VerilogExportMentionsEveryCellKind) {
  const FlowResult res = adder_flow(4, 4, true);
  std::stringstream ss;
  write_verilog(res.physical.net, ss);
  const std::string v = ss.str();
  EXPECT_NE(v.find("sfq_dff"), std::string::npos);
  EXPECT_NE(v.find("sfq_t1_"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(PhysicalNetlist, EveryNodeHasAStage) {
  const FlowResult res = adder_flow(6, 4, true);
  ASSERT_GE(res.physical.stage.size(), res.physical.net.size());
  for (const NodeId id : res.physical.net.topo_order()) {
    const Node& n = res.physical.net.node(id);
    if (is_clocked(n.type)) {
      EXPECT_GT(res.physical.stage[id], 0) << "clocked node " << id;
    }
  }
}

TEST(PhysicalNetlist, DffChainsAreContiguous) {
  // Every DFF sits at most n stages after its fanin — by construction of the
  // spines, but checked here structurally rather than via the simulator.
  for (const bool use_t1 : {false, true}) {
    const FlowResult res = adder_flow(8, 4, use_t1);
    const auto& phys = res.physical;
    for (NodeId id = 0; id < phys.net.size(); ++id) {
      const Node& n = phys.net.node(id);
      if (n.dead || n.type != GateType::Dff) continue;
      const Stage gap = phys.stage[id] - phys.stage[n.fanin(0)];
      EXPECT_GE(gap, 1);
      EXPECT_LE(gap, 4);
    }
  }
}

TEST(PhysicalNetlist, NodeMapCoversAllLiveLogic) {
  const FlowResult res = adder_flow(5, 4, true);
  const auto& map = res.physical.node_map;
  for (const NodeId id : res.mapped.topo_order()) {
    EXPECT_NE(map[id], kNullNode) << "unmapped node " << id;
  }
}

TEST(PhysicalNetlist, SinglePhaseMatchesClassicBalancing) {
  // In single-phase clocking the per-driver spine length equals the classic
  // "max level difference - 1" of textbook path balancing.
  Network net;
  const NodeId x = net.add_pi();
  const NodeId o = net.add_pi();
  NodeId deep = x;
  for (int i = 0; i < 6; ++i) {
    deep = net.add_xor(deep, o);
  }
  net.add_po(net.add_and(x, deep));
  FlowParams p;
  p.clk.phases = 1;
  p.use_t1 = false;
  // The optimizer would legitimately cancel this xor chain (even parity of o
  // collapses it to x); disable it — the test pins classic balancing.
  p.opt.enable = false;
  const auto res = run_flow(net, p);
  // x: consumers at levels 1 and 7 -> 6 DFFs; o: consumers 1..6 -> 5 DFFs.
  EXPECT_EQ(res.metrics.num_dffs, 11u);
}

TEST(PlanProperties, T1SlotsAreAPermutationAndFeasible) {
  // Random stage assignments for a T1 cell: the chosen slots must always be a
  // permutation of {1,2,3} with landing stages not before the producers.
  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    Network net;
    const NodeId a = net.add_pi();
    const NodeId b = net.add_pi();
    const NodeId c = net.add_pi();
    const NodeId da = net.add_dff(a);
    const NodeId db = net.add_dff(b);
    const NodeId dc = net.add_dff(c);
    const NodeId t1 = net.add_t1(da, db, dc);
    net.add_po(net.add_t1_port(t1, T1PortFn::Sum));

    std::vector<Stage> stage(net.size(), 0);
    // Producers somewhere below the T1; keep eq. 3 satisfiable.
    const Stage st1 = 10;
    stage[t1] = st1;
    std::array<NodeId, 3> ds{da, db, dc};
    std::array<Stage, 3> sd;
    for (int i = 0; i < 3; ++i) {
      sd[i] = 1 + static_cast<Stage>(rng() % 7);  // 1..7 = st1-3 at most
      stage[ds[i]] = sd[i];
    }
    std::sort(sd.begin(), sd.end());
    if (st1 < std::max({sd[0] + 3, sd[1] + 2, sd[2] + 1})) {
      continue;  // infeasible draw
    }
    const MultiphaseConfig clk{4};
    const auto plan = plan_dffs(net, stage, st1 + 1, clk);
    const auto it = plan.t1_slots.find(t1);
    ASSERT_NE(it, plan.t1_slots.end());
    auto slots = it->second;
    std::array<int, 3> sorted = slots;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::array<int, 3>{1, 2, 3}));
    // Body fanins are sorted by id at construction: map slot to its fanin.
    const Node& body = net.node(t1);
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(st1 - slots[i], stage[body.fanin(i)]) << "landing before producer";
    }
  }
}

}  // namespace
}  // namespace t1sfq
