#include "core/flow.hpp"

#include <gtest/gtest.h>

#include "benchmarks/arith.hpp"
#include "benchmarks/epfl.hpp"
#include "benchmarks/iscas.hpp"
#include "core/report.hpp"
#include "network/equivalence.hpp"

namespace t1sfq {
namespace {

Network small_adder(unsigned bits) {
  Network net("rca" + std::to_string(bits));
  const Word a = add_pi_word(net, bits, "a");
  const Word b = add_pi_word(net, bits, "b");
  add_po_word(net, ripple_carry_adder(net, a, b, net.get_const0()), "s");
  return net;
}

FlowParams make_params(unsigned phases, bool use_t1) {
  FlowParams p;
  p.clk.phases = phases;
  p.use_t1 = use_t1;
  // Seed-reproduction mode: these tests pin the paper's T1 behavior on the
  // generators' raw structures. Optimized flows are covered by opt_test.cpp
  // and the random-flow property tests (which keep the optimizer on).
  p.opt.enable = false;
  return p;
}

TEST(Flow, SinglePhaseBaselineVerifies) {
  const Network net = small_adder(6);
  const auto res = run_flow(net, make_params(1, false));
  EXPECT_GT(res.metrics.num_dffs, 0u);
  EXPECT_EQ(res.metrics.t1_used, 0u);
  EXPECT_TRUE(verify_flow(res, net, MultiphaseConfig{1}));
}

TEST(Flow, FourPhaseBaselineCutsDffs) {
  const Network net = small_adder(8);
  const auto r1 = run_flow(net, make_params(1, false));
  const auto r4 = run_flow(net, make_params(4, false));
  EXPECT_LT(r4.metrics.num_dffs, r1.metrics.num_dffs);
  EXPECT_LT(r4.metrics.area_jj, r1.metrics.area_jj);
  EXPECT_LT(r4.metrics.depth_cycles, r1.metrics.depth_cycles);
  EXPECT_TRUE(verify_flow(r4, net, MultiphaseConfig{4}));
}

TEST(Flow, T1FlowConvertsTheAdderAndWins) {
  // The paper's headline: on the adder nearly every full adder maps to a T1
  // and area drops vs the 4-phase baseline.
  const Network net = small_adder(16);
  const auto base = run_flow(net, make_params(4, false));
  const auto t1 = run_flow(net, make_params(4, true));
  // Bit 0 is a half adder (cin = 0 folds away), so bits-1 T1 cells — the same
  // pattern as the paper's 127 T1s on the 128-bit adder.
  EXPECT_EQ(t1.metrics.t1_used, 15u);
  EXPECT_LT(t1.metrics.area_jj, base.metrics.area_jj);
  EXPECT_TRUE(verify_flow(t1, net, MultiphaseConfig{4}));
}

TEST(Flow, T1DepthOverheadIsModest) {
  // Depth may grow (eq. 3 spacing) but stays in the paper's ballpark (+13%
  // average, up to ~+25%).
  const Network net = small_adder(12);
  const auto base = run_flow(net, make_params(4, false));
  const auto t1 = run_flow(net, make_params(4, true));
  EXPECT_LE(t1.metrics.depth_cycles, base.metrics.depth_cycles * 2);
}

TEST(Flow, T1WithTooFewPhasesThrows) {
  const Network net = small_adder(2);
  EXPECT_THROW(run_flow(net, make_params(2, true)), std::invalid_argument);
}

TEST(Flow, MultiplierEndToEnd) {
  const Network net = bench::c6288_like(5);
  const auto t1 = run_flow(net, make_params(4, true));
  EXPECT_GT(t1.metrics.t1_used, 0u);
  EXPECT_TRUE(verify_flow(t1, net, MultiphaseConfig{4}));
}

TEST(Flow, VoterEndToEnd) {
  const Network net = bench::epfl_voter(15);
  const auto t1 = run_flow(net, make_params(4, true));
  EXPECT_GT(t1.metrics.t1_used, 0u);
  EXPECT_TRUE(verify_flow(t1, net, MultiphaseConfig{4}));
}

TEST(Flow, MetricsAreInternallyConsistent) {
  const Network net = small_adder(8);
  const auto res = run_flow(net, make_params(4, true));
  // Area must at least cover gates + DFFs.
  const CellLibrary lib;
  uint64_t floor_area = res.metrics.num_dffs * lib.jj_dff;
  EXPECT_GT(res.metrics.area_jj, floor_area);
  EXPECT_EQ(res.metrics.num_dffs, res.physical.num_dffs);
  EXPECT_GT(res.metrics.depth_cycles, 0);
}

TEST(Flow, AreaConfigSwitchesMatter) {
  const Network net = small_adder(6);
  FlowParams p = make_params(4, false);
  const auto with_split = run_flow(net, p);
  p.area.count_splitters = false;
  const auto without_split = run_flow(net, p);
  EXPECT_GT(with_split.metrics.area_jj, without_split.metrics.area_jj);
  p.area.clock_jj_per_clocked = 0;
  const auto without_clock = run_flow(net, p);
  EXPECT_GT(without_split.metrics.area_jj, without_clock.metrics.area_jj);
}

TEST(Flow, MilpEngineOnTinyCircuit) {
  const Network net = small_adder(2);
  FlowParams p = make_params(4, true);
  p.engine = PhaseEngine::ExactMilp;
  const auto res = run_flow(net, p);
  EXPECT_TRUE(verify_flow(res, net, MultiphaseConfig{4}));
  // The exact engine cannot be worse than the heuristic.
  FlowParams ph = make_params(4, true);
  const auto heur = run_flow(net, ph);
  EXPECT_LE(res.metrics.num_dffs, heur.metrics.num_dffs);
}

TEST(Flow, TableRowSummarization) {
  const Network net = small_adder(4);
  TableRow row;
  row.name = net.name();
  row.single_phase = run_flow(net, make_params(1, false)).metrics;
  row.multi_phase = run_flow(net, make_params(4, false)).metrics;
  row.t1 = run_flow(net, make_params(4, true)).metrics;
  const auto summary = summarize({row});
  EXPECT_GT(summary.dff_ratio_vs_1phi, 0.0);
  EXPECT_LT(summary.dff_ratio_vs_1phi, 1.0);  // multiphase + T1 beats 1 phase
  std::ostringstream os;
  print_table(os, {row}, 4);
  EXPECT_NE(os.str().find("rca4"), std::string::npos);
  EXPECT_NE(os.str().find("Average"), std::string::npos);
}

TEST(Flow, SinBenchmarkSmallEndToEnd) {
  const Network net = bench::epfl_sin(6);
  const auto res = run_flow(net, make_params(4, true));
  EXPECT_TRUE(verify_flow(res, net, MultiphaseConfig{4}));
}

class FlowPhases : public ::testing::TestWithParam<unsigned> {};

TEST_P(FlowPhases, BaselineVerifiesAcrossPhaseCounts) {
  const Network net = small_adder(5);
  const unsigned phases = GetParam();
  const auto res = run_flow(net, make_params(phases, false));
  EXPECT_TRUE(verify_flow(res, net, MultiphaseConfig{phases}));
}

INSTANTIATE_TEST_SUITE_P(Phases, FlowPhases, ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u));

}  // namespace
}  // namespace t1sfq
